#include "sim/shared_cell.h"

#include <stdexcept>

namespace meanet::sim {

namespace detail {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double hashed_jitter_s(std::uint64_t seed, std::uint64_t key, double width) {
  if (width <= 0.0) return 0.0;
  // Two mixing rounds so adjacent keys decorrelate; the top 53 bits give
  // a uniform double in [0, 1).
  const std::uint64_t mixed = splitmix64(splitmix64(seed) ^ key);
  const double unit = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return unit * width;
}

}  // namespace detail

SharedCell::SharedCell(SharedCellConfig config)
    : config_(config), created_(std::chrono::steady_clock::now()) {
  if (config_.uplink.throughput_mbps <= 0.0 || config_.downlink.throughput_mbps <= 0.0) {
    throw std::invalid_argument("SharedCell: non-positive throughput");
  }
  if (config_.base_latency_s < 0.0 || config_.jitter_s < 0.0) {
    throw std::invalid_argument("SharedCell: negative latency or jitter");
  }
}

int SharedCell::attach() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++attached_;
  return next_station_++;
}

void SharedCell::detach(int station) {
  (void)station;  // ids are never reused; only the contention count drops
  std::lock_guard<std::mutex> lock(mutex_);
  if (attached_ > 0) --attached_;
}

int SharedCell::stations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return attached_;
}

double SharedCell::delay_s(const WifiModel& model, int station, std::uint64_t key,
                           std::int64_t bytes, std::uint64_t direction_salt) {
  // Station 0 with direction salt 0 must hash exactly like a plain
  // single-station SimulatedLink (the parity contract), so the station
  // salt vanishes for station 0.
  const std::uint64_t salted =
      config_.seed ^ (static_cast<std::uint64_t>(station) * 0x9E3779B97F4A7C15ULL) ^
      direction_salt;
  const double jitter_s = detail::hashed_jitter_s(salted, key, config_.jitter_s);
  // One critical section: the contention factor and the airtime charge
  // must agree on the station count.
  std::lock_guard<std::mutex> lock(mutex_);
  const double contention = attached_ > 1 ? static_cast<double>(attached_) : 1.0;
  const double transfer_s = model.upload_time_s(bytes) * contention;
  busy_s_ += transfer_s + jitter_s;  // the base floor is not airtime
  return transfer_s + jitter_s + config_.base_latency_s;
}

double SharedCell::uplink_delay_s(int station, std::uint64_t key, std::int64_t bytes) {
  return delay_s(config_.uplink, station, key, bytes, 0);
}

double SharedCell::downlink_delay_s(int station, std::uint64_t key, std::int64_t bytes) {
  // A fixed direction salt keeps an uplink and a downlink transfer with
  // the same key on independent jitter draws.
  return delay_s(config_.downlink, station, key, bytes, 0xD0D0D0D0D0D0D0D0ULL);
}

double SharedCell::busy_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_s_;
}

double SharedCell::utilization() const {
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - created_).count();
  if (elapsed_s <= 0.0) return 0.0;
  return busy_seconds() / elapsed_s;
}

}  // namespace meanet::sim
