// Simulated offload transport for the session's dispatcher thread.
//
// PR 2 modelled the cloud link as a fixed injected latency
// (LatencyInjectingBackend). This replaces that constant as the default
// transport model: the dispatcher derives each payload's upload time
// from the WiFi model (payload bytes / throughput, paper §IV-B) and
// adds an optional base round-trip plus seeded uniform jitter, so a
// bigger payload really does occupy the single shared link for longer
// and two runs with the same seed see the same jitter stream.
#pragma once

#include <cstdint>
#include <mutex>

#include "sim/wifi_model.h"
#include "util/rng.h"

namespace meanet::runtime {

/// Link parameters applied by the offload dispatcher to every
/// dispatched payload: delay = wifi.upload_time_s(payload_bytes)
/// + base_latency_s + U[0, jitter_s).
struct TransportConfig {
  /// Upload throughput / power model; the default is the paper's
  /// 18.88 Mb/s cell.
  sim::WifiModel wifi;
  /// Fixed round-trip floor (propagation + cloud compute), seconds.
  double base_latency_s = 0.0;
  /// Width of the uniform jitter added per payload, seconds. 0 = none.
  double jitter_s = 0.0;
  /// Seed of the jitter stream; the same seed reproduces the same
  /// per-payload delays in dispatch order.
  std::uint64_t seed = 0x1f1ULL;
};

/// The dispatcher-side link simulator: one per session (the single
/// shared cloud link). Thread-safe; jitter draws are deterministic from
/// the seed in call order.
class SimulatedLink {
 public:
  explicit SimulatedLink(TransportConfig config);

  /// Seconds the link is busy shipping `payload_bytes` (upload + base
  /// RTT + one jitter draw).
  double delay_s(std::int64_t payload_bytes);

  const TransportConfig& config() const { return config_; }

 private:
  TransportConfig config_;
  std::mutex mutex_;
  util::Rng rng_;
};

}  // namespace meanet::runtime
