// Simulated offload transport for the session's dispatcher thread.
//
// PR 2 modelled the cloud link as a fixed injected latency
// (LatencyInjectingBackend). PR 3 replaced that constant with a
// WiFi-derived upload time per payload (payload bytes / throughput,
// paper §IV-B) plus an optional base round-trip and seeded jitter. This
// PR adds the other two halves of the radio picture: a *downlink* model
// — the answer's bytes now cost transfer time on the way back, gating
// when the waiting worker sees it — and a *shared cell*
// (sim::SharedCell) several sessions attach to, contending for airtime.
//
// A SimulatedLink is one station's view of a cell. When
// TransportConfig::cell is set, the link attaches to that shared cell
// at construction (and detaches at destruction); otherwise it builds a
// private single-station cell from the config's wifi/downlink/latency
// fields — a plain config and an explicit one-station cell with the
// same parameters therefore produce identical timings by construction
// (asserted in tests/test_shared_cell.cpp). Every delay is a pure
// function of (seed, station, transfer key, bytes, direction, attached
// stations) — see sim/shared_cell.h — so same-seed runs are
// bit-identical at any worker count. Note the jitter *generator*
// changed in PR 5: PR 3 drew from a seeded Rng stream in dispatch
// order, this draws from a per-transfer hash, so a jittered experiment
// re-run at a PR 3 seed sees different (still seeded, still bounded)
// delay values than it did before PR 5.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "sim/clock.h"
#include "sim/shared_cell.h"
#include "sim/wifi_model.h"

namespace meanet::runtime {

/// Link parameters applied by the offload dispatcher to every
/// dispatched payload: upload delay = wifi.upload_time_s(payload bytes)
/// + base_latency_s + U[0, jitter_s), and — new — a downlink delay for
/// the response computed the same way from the downlink model.
struct TransportConfig {
  /// Upload throughput / power model; the default is the paper's
  /// 18.88 Mb/s cell.
  sim::WifiModel wifi;
  /// Downlink throughput model for the response. Defaults to the same
  /// 18.88 Mb/s cell — answers are a few bytes, so the default downlink
  /// cost is microseconds, but it is no longer free and it scales with
  /// response_bytes_per_instance.
  sim::WifiModel downlink;
  /// Fixed round-trip floor (propagation + cloud compute), seconds,
  /// charged once per direction.
  double base_latency_s = 0.0;
  /// Width of the uniform jitter added per transfer, seconds. 0 = none.
  double jitter_s = 0.0;
  /// Seed of the jitter stream; the same seed reproduces the same
  /// per-transfer delays for the same transfer keys.
  std::uint64_t seed = 0x1f1ULL;
  /// Response payload priced per answered instance (a label plus
  /// framing). Multiplied by the payload's instance count to get the
  /// downlink transfer size; 0 restores PR 3's free answers.
  std::int64_t response_bytes_per_instance = 4;
  /// When set, this link is one station of the shared cell: delays use
  /// the cell's models and contention factor, and the wifi / downlink /
  /// base_latency_s / jitter_s / seed fields above are ignored. All
  /// sessions holding the same pointer contend for the same airtime.
  std::shared_ptr<sim::SharedCell> cell;
};

/// One station's transport endpoint, used by the session's offload
/// dispatcher. Thread-safe; delays are deterministic per (seed, station,
/// key, bytes, direction, attached stations).
class SimulatedLink {
 public:
  /// `clock` is the session's time source (null = the process
  /// WallClock): a private cell is built on it, and a shared cell must
  /// already be on the same clock instance (throws otherwise — two
  /// stations timing one medium on different clocks cannot contend
  /// coherently).
  explicit SimulatedLink(TransportConfig config,
                         std::shared_ptr<sim::Clock> clock = nullptr);
  ~SimulatedLink();

  SimulatedLink(const SimulatedLink&) = delete;
  SimulatedLink& operator=(const SimulatedLink&) = delete;

  /// Seconds the uplink is busy shipping `payload_bytes`, jitter keyed
  /// by `key` (the dispatcher keys by the payload's first result id, so
  /// a request's draw does not depend on dispatch interleaving).
  double uplink_delay_s(std::uint64_t key, std::int64_t payload_bytes);
  /// Seconds the downlink is busy returning `response_bytes`.
  double downlink_delay_s(std::uint64_t key, std::int64_t response_bytes);

  /// Full timed uplink occupancy on the cell: blocks the dispatcher for
  /// the transfer's simulated duration on the session clock (a
  /// scheduled event under a VirtualClock, a real wait under
  /// WallClock). `cancel` — re-checked on every wake — cuts the
  /// transfer short; signal it through poke().
  sim::TransferOutcome upload(std::uint64_t key, std::int64_t payload_bytes,
                              const std::function<bool()>& cancel = nullptr);
  /// The downlink counterpart for the response's bytes.
  sim::TransferOutcome download(std::uint64_t key, std::int64_t response_bytes,
                                const std::function<bool()>& cancel = nullptr);
  /// Wakes this link's in-flight transfers to re-check their cancel
  /// predicates (the abandonment flag lives under a ticket mutex the
  /// cell cannot see).
  void poke();

  /// Legacy PR 3 entry point: an uplink delay keyed by an internal
  /// per-link call counter.
  double delay_s(std::int64_t payload_bytes);

  /// Downlink transfer size for a payload of `instances` answers.
  std::int64_t response_bytes(std::int64_t instances) const {
    return config_.response_bytes_per_instance * instances;
  }

  const TransportConfig& config() const { return config_; }
  /// The cell this link transmits on (the shared one, or the private
  /// single-station cell built from a plain config) — the session's
  /// airtime metrics read it.
  const sim::SharedCell& cell() const { return *cell_; }
  /// This link's station id on the cell.
  int station() const { return station_; }

 private:
  TransportConfig config_;
  std::shared_ptr<sim::Clock> clock_;
  std::shared_ptr<sim::SharedCell> cell_;
  int station_ = 0;
  std::atomic<std::uint64_t> next_key_{0};
};

}  // namespace meanet::runtime
