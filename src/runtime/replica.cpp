#include "runtime/replica.h"

#include <stdexcept>

#include "nn/parameter.h"

namespace meanet::runtime {

namespace {

void sync_block(nn::Sequential& src, nn::Sequential& dst) {
  const std::vector<nn::Parameter*> src_params = src.parameters();
  const std::vector<nn::Parameter*> dst_params = dst.parameters();
  if (src_params.size() != dst_params.size()) {
    throw std::invalid_argument("sync_weights: parameter count mismatch in " + src.name());
  }
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    if (src_params[i]->value.shape() != dst_params[i]->value.shape()) {
      throw std::invalid_argument("sync_weights: shape mismatch at " + src_params[i]->name);
    }
    dst_params[i]->value = src_params[i]->value;
  }
  const std::vector<nn::NamedTensor> src_state = src.state();
  const std::vector<nn::NamedTensor> dst_state = dst.state();
  if (src_state.size() != dst_state.size()) {
    throw std::invalid_argument("sync_weights: state count mismatch in " + src.name());
  }
  for (std::size_t i = 0; i < src_state.size(); ++i) {
    if (src_state[i].tensor->shape() != dst_state[i].tensor->shape()) {
      throw std::invalid_argument("sync_weights: state shape mismatch at " + src_state[i].name);
    }
    *dst_state[i].tensor = *src_state[i].tensor;
  }
}

}  // namespace

void sync_weights(core::MEANet& src, core::MEANet& dst) {
  sync_block(src.main_trunk(), dst.main_trunk());
  sync_block(src.main_exit(), dst.main_exit());
  sync_block(src.adaptive(), dst.adaptive());
  sync_block(src.extension(), dst.extension());
  if (src.main_frozen()) dst.freeze_main();
}

}  // namespace meanet::runtime
