#include "runtime/offload_backend.h"

#include <cstdlib>
#include <stdexcept>

#include "sim/cloud_node.h"
#include "sim/feature_cloud.h"

namespace meanet::runtime {

RawImageBackend::RawImageBackend(sim::CloudNode* cloud) : cloud_(cloud) {
  if (cloud_ == nullptr) throw std::invalid_argument("RawImageBackend: null CloudNode");
}

std::vector<int> RawImageBackend::classify(const OffloadPayload& payload) {
  return cloud_->classify(payload.images);
}

std::int64_t RawImageBackend::payload_bytes(const Shape& image_shape,
                                            const Shape& /*feature_shape*/) const {
  // 1 byte/pixel: the image travels as its 8-bit sensor representation.
  return image_shape.numel() / image_shape.dim(0);
}

FeatureBackend::FeatureBackend(sim::FeatureCloudNode* cloud) : cloud_(cloud) {
  if (cloud_ == nullptr) throw std::invalid_argument("FeatureBackend: null FeatureCloudNode");
}

std::vector<int> FeatureBackend::classify(const OffloadPayload& payload) {
  return cloud_->classify_features(payload.features);
}

std::int64_t FeatureBackend::payload_bytes(const Shape& /*image_shape*/,
                                           const Shape& feature_shape) const {
  return sim::FeatureCloudNode::feature_bytes(feature_shape);
}

std::vector<int> NullBackend::classify(const OffloadPayload& /*payload*/) { return {}; }

std::int64_t NullBackend::payload_bytes(const Shape& /*image_shape*/,
                                        const Shape& /*feature_shape*/) const {
  return 0;
}

const char* offload_mode_name(OffloadMode mode) {
  switch (mode) {
    case OffloadMode::kNone:
      return "none";
    case OffloadMode::kRawImage:
      return "raw-image";
    case OffloadMode::kFeature:
      return "feature";
    case OffloadMode::kWire:
      return "wire";
  }
  std::abort();  // unreachable: the switch is exhaustive (-Wswitch)
}

std::shared_ptr<OffloadBackend> make_backend(OffloadMode mode, sim::CloudNode* cloud,
                                             sim::FeatureCloudNode* feature_cloud) {
  switch (mode) {
    case OffloadMode::kNone:
      return std::make_shared<NullBackend>();
    case OffloadMode::kRawImage:
      return std::make_shared<RawImageBackend>(cloud);
    case OffloadMode::kFeature:
      return std::make_shared<FeatureBackend>(feature_cloud);
    case OffloadMode::kWire:
      throw std::invalid_argument(
          "make_backend: OffloadMode::kWire is configured through "
          "EngineConfig::wire_socket_path (InferenceSession builds it)");
  }
  std::abort();  // unreachable: the switch is exhaustive (-Wswitch)
}

}  // namespace meanet::runtime
