// Weight synchronization between architecturally identical MEANets.
//
// Historically this backed replica-based serving: eval forwards cached
// activations, so every InferenceSession worker needed its own
// weight-synced net. Eval forwards are cache-free now and workers share
// one net (EngineConfig::replicas is a deprecated no-op) — sync_weights
// remains as the model-distribution primitive: pushing a freshly
// trained net to a deployed one (paper Alg. 1 step 4, "download to the
// edge") bit-identically.
#pragma once

#include "core/meanet.h"

namespace meanet::runtime {

/// Copies every parameter value and non-trainable state tensor of `src`
/// into `dst`. The two nets must be architecturally identical (same
/// builder + configuration); throws std::invalid_argument on any
/// parameter-count or shape mismatch.
void sync_weights(core::MEANet& src, core::MEANet& dst);

}  // namespace meanet::runtime
