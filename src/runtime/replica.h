// Model replication for concurrent serving.
//
// The nn layers cache activations for backward on every forward call, so
// a single MEANet cannot be shared between InferenceSession workers.
// Workers therefore each run an architecturally identical replica;
// sync_weights copies the trained parameters and BatchNorm running
// statistics from the primary so every replica answers bit-identically.
#pragma once

#include "core/meanet.h"

namespace meanet::runtime {

/// Copies every parameter value and non-trainable state tensor of `src`
/// into `dst`. The two nets must be architecturally identical (same
/// builder + configuration); throws std::invalid_argument on any
/// parameter-count or shape mismatch.
void sync_weights(core::MEANet& src, core::MEANet& dst);

}  // namespace meanet::runtime
