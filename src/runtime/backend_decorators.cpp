#include "runtime/backend_decorators.h"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace meanet::runtime {

BackendDecorator::BackendDecorator(std::shared_ptr<OffloadBackend> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("BackendDecorator: null inner backend");
}

std::vector<int> BackendDecorator::classify(const OffloadPayload& payload) {
  return inner_->classify(payload);
}

LatencyInjectingBackend::LatencyInjectingBackend(std::shared_ptr<OffloadBackend> inner,
                                                 double latency_s, double jitter_s,
                                                 std::uint64_t seed,
                                                 std::shared_ptr<sim::Clock> clock)
    : BackendDecorator(std::move(inner)),
      latency_s_(latency_s),
      jitter_s_(jitter_s),
      clock_(sim::resolve_clock(std::move(clock))),
      rng_(seed) {
  if (latency_s_ < 0.0 || jitter_s_ < 0.0) {
    throw std::invalid_argument("LatencyInjectingBackend: negative latency or jitter");
  }
}

std::vector<int> LatencyInjectingBackend::classify(const OffloadPayload& payload) {
  double delay = latency_s_;
  if (jitter_s_ > 0.0) {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    delay += rng_.uniform(0.0f, static_cast<float>(jitter_s_));
  }
  if (delay > 0.0) clock_->sleep_for(delay);
  return inner().classify(payload);
}

std::string LatencyInjectingBackend::describe() const {
  std::ostringstream os;
  os << "latency(" << latency_s_ * 1e3 << "ms";
  if (jitter_s_ > 0.0) os << "+-" << jitter_s_ * 1e3 << "ms";
  os << ")+" << inner().describe();
  return os.str();
}

LossyBackend::LossyBackend(std::shared_ptr<OffloadBackend> inner, double loss_rate,
                           std::uint64_t seed)
    : BackendDecorator(std::move(inner)), loss_rate_(loss_rate), rng_(seed) {
  if (loss_rate_ < 0.0 || loss_rate_ > 1.0) {
    throw std::invalid_argument("LossyBackend: loss_rate must be in [0, 1]");
  }
}

std::vector<int> LossyBackend::classify(const OffloadPayload& payload) {
  bool dropped;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    dropped = rng_.bernoulli(loss_rate_);
  }
  if (dropped) return {};  // unavailable: caller keeps the edge's guess
  return inner().classify(payload);
}

std::string LossyBackend::describe() const {
  std::ostringstream os;
  os << "lossy(" << loss_rate_ << ")+" << inner().describe();
  return os.str();
}

RetryingBackend::RetryingBackend(std::shared_ptr<OffloadBackend> inner, int max_attempts)
    : RetryingBackend(std::move(inner), max_attempts, 0.0, nullptr) {}

RetryingBackend::RetryingBackend(std::shared_ptr<OffloadBackend> inner, int max_attempts,
                                 double backoff_s, std::shared_ptr<sim::Clock> clock)
    : BackendDecorator(std::move(inner)),
      max_attempts_(max_attempts),
      backoff_s_(backoff_s),
      clock_(sim::resolve_clock(std::move(clock))) {
  if (max_attempts_ < 1) throw std::invalid_argument("RetryingBackend: max_attempts < 1");
  if (backoff_s_ < 0.0) throw std::invalid_argument("RetryingBackend: negative backoff");
}

std::vector<int> RetryingBackend::classify(const OffloadPayload& payload) {
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    // Exponential backoff before each re-send (none before the first
    // attempt): backoff_s, 2*backoff_s, 4*backoff_s, ... on the clock.
    if (attempt > 0 && backoff_s_ > 0.0) {
      clock_->sleep_for(backoff_s_ * static_cast<double>(1LL << (attempt - 1)));
    }
    std::vector<int> answer;
    try {
      answer = inner().classify(payload);
    } catch (...) {
      continue;  // a throwing link costs one attempt
    }
    if (!answer.empty()) return answer;
  }
  return {};
}

std::string RetryingBackend::describe() const {
  std::ostringstream os;
  os << "retry(" << max_attempts_;
  if (backoff_s_ > 0.0) os << ",backoff=" << backoff_s_ * 1e3 << "ms";
  os << ")+" << inner().describe();
  return os.str();
}

}  // namespace meanet::runtime
