// Pluggable cloud side of Alg. 2 (paper §III-C).
//
// The paper compares two edge-cloud collaboration modes — uploading raw
// images to an independent cloud model, or uploading main-block features
// to a partitioned head. The seed hard-wired that choice into the type
// system (sim::CloudNode vs sim::FeatureCloudNode); OffloadBackend turns
// it into a runtime decision behind one interface so an InferenceSession
// can swap modes without touching its call sites.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace meanet::sim {
class CloudNode;
class FeatureCloudNode;
}  // namespace meanet::sim

namespace meanet::runtime {

/// Everything the edge can ship for a batch of offloaded instances: the
/// raw images and the main-trunk features it already computed for them
/// (rows correspond). Backends read whichever representation they need.
struct OffloadPayload {
  Tensor images;    // [K, C, H, W] raw offloaded instances
  Tensor features;  // [K, c, h, w] main-trunk features of the same rows
};

class OffloadBackend {
 public:
  virtual ~OffloadBackend() = default;

  /// Classifies the offloaded instances (global label space). An empty
  /// result means the backend is unavailable; the caller keeps the
  /// edge's best guess for every instance in the payload. A throwing
  /// classify() is treated the same way by InferenceSession (an
  /// unreachable cloud must not take down edge-side answers).
  virtual std::vector<int> classify(const OffloadPayload& payload) = 0;

  /// Which payload representations classify() reads; the session skips
  /// gathering the ones a backend does not need.
  virtual bool needs_images() const { return false; }
  virtual bool needs_features() const { return false; }

  /// Upload bytes per offloaded instance for the given geometries
  /// ([1,C,H,W] image shape, [1,c,h,w] feature shape).
  virtual std::int64_t payload_bytes(const Shape& image_shape,
                                     const Shape& feature_shape) const = 0;

  /// Human-readable backend description for logs and reports.
  virtual std::string describe() const = 0;
};

/// Raw-data offload (the paper's preferred mode): ships images to an
/// independent, stronger cloud model. Payload priced at 1 byte/pixel
/// (the image as an 8-bit upload).
class RawImageBackend : public OffloadBackend {
 public:
  explicit RawImageBackend(sim::CloudNode* cloud);

  std::vector<int> classify(const OffloadPayload& payload) override;
  std::int64_t payload_bytes(const Shape& image_shape, const Shape& feature_shape) const override;
  std::string describe() const override { return "raw-image"; }
  bool needs_images() const override { return true; }

 private:
  sim::CloudNode* cloud_;
};

/// Feature offload (partitioned network, Table I row 4): ships the
/// main-trunk features to a cloud-side head. Payload priced at
/// 4 bytes/element (float32 feature maps).
class FeatureBackend : public OffloadBackend {
 public:
  explicit FeatureBackend(sim::FeatureCloudNode* cloud);

  std::vector<int> classify(const OffloadPayload& payload) override;
  std::int64_t payload_bytes(const Shape& image_shape, const Shape& feature_shape) const override;
  std::string describe() const override { return "feature"; }
  bool needs_features() const override { return true; }

 private:
  sim::FeatureCloudNode* cloud_;
};

/// Edge-only fallback: never answers, so cloud-marked instances keep the
/// edge's best guess. Stands in for an unreachable cloud.
class NullBackend : public OffloadBackend {
 public:
  std::vector<int> classify(const OffloadPayload& payload) override;
  std::int64_t payload_bytes(const Shape& image_shape, const Shape& feature_shape) const override;
  std::string describe() const override { return "null"; }
};

/// Runtime-selectable offload mode for EngineConfig.
enum class OffloadMode {
  kNone,
  kRawImage,
  kFeature,
  /// Framed protocol to a meanet_cloudd over a real byte stream
  /// (wire/wire_backend.h); configured by EngineConfig::wire_socket_path
  /// — the session builds the WireBackend itself, make_backend rejects
  /// this mode (it has no wire parameters).
  kWire,
};

const char* offload_mode_name(OffloadMode mode);

/// Builds the backend for `mode`; the matching node pointer must be
/// non-null for kRawImage / kFeature. kWire is built by
/// InferenceSession from its wire config fields, not here.
std::shared_ptr<OffloadBackend> make_backend(OffloadMode mode, sim::CloudNode* cloud,
                                             sim::FeatureCloudNode* feature_cloud);

}  // namespace meanet::runtime
