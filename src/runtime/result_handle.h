// Per-request completion for the async serving API.
//
// submit() hands back a ResultHandle instead of a bare id: a future-like
// view onto the request's slot in the session's completion table. Each
// submitted request owns one detail::RequestState; the state transitions
// exactly once — the worker settles it with results or an error, or a
// caller cancels it first — and every handle sharing the state observes
// the transition through ready() / try_get() / wait() / cancelled().
// Reads are non-destructive — results stay in the state, so drain() can
// still collect a whole round while callers hold handles onto individual
// requests.
//
// Cancellation (ResultHandle::cancel()) races cleanly with the serving
// side: exactly one of {settle, fail, cancel} wins the transition, the
// losers are no-ops. A request cancelled while it still sits in the
// queue is discarded by the worker without ever touching the engine or
// the offload backend; a request cancelled mid-service finishes its
// inference but the results are dropped (the settle loses the race).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/inference_policy.h"
#include "sim/clock.h"

namespace meanet::runtime {

/// Per-instance outcome of Alg. 2.
struct InferenceResult {
  std::int64_t id = 0;
  /// Final prediction in global label space (cloud answer when the
  /// instance was offloaded and the backend responded in time).
  int prediction = -1;
  core::Route route = core::Route::kMainExit;
  /// True when the instance was cloud-routed and the backend answered
  /// within the offload timeout and the instance's deadline.
  bool offloaded = false;
  /// True when the result was served from the session response cache.
  bool cached = false;
  /// True when the instance's routed deadline expired
  /// (EngineConfig::route_deadline_s or the submit-time override). A
  /// cloud-routed instance with this flag kept its edge prediction —
  /// offloaded and deadline_expired are mutually exclusive.
  bool deadline_expired = false;
  // Exit-1 signals (only the ones the routing policy declared via
  // needed_signals() are computed; the rest stay 0).
  float entropy = 0.0f;
  float main_confidence = 0.0f;
  float margin = 0.0f;
  /// Max softmax score at exit 2 (0 when the extension did not run).
  float extension_confidence = 0.0f;
  /// Exit-1 argmax (the IsHard detector's input).
  int main_prediction = -1;
  /// Edge prediction before any cloud answer (the offload fallback).
  int edge_prediction = -1;
  // Per-instance cost (EngineConfig::costs pricing).
  double compute_energy_j = 0.0;
  double comm_energy_j = 0.0;
  double compute_time_s = 0.0;
  double comm_time_s = 0.0;
  /// Simulated transport occupancy of the offload that delivered this
  /// instance's cloud answer: the upload delay of its payload and the
  /// downlink delay of the response (whole-payload figures — coalesced
  /// instances share one transfer). 0 when the instance was not
  /// offloaded or the session has no transport configured. Pure
  /// functions of the transport seed and the payload identity, so
  /// same-seed runs report bit-identical values at any worker count.
  double upload_time_s = 0.0;
  double download_time_s = 0.0;
  /// End-to-end (submit() -> settle) latency of the request that
  /// carried this instance, on the session clock, seconds — the same
  /// figure SessionMetrics aggregates into per-route percentiles.
  /// Under a VirtualClock this is pure simulated time (compute costs
  /// zero virtual seconds), so a seeded scenario reproduces it
  /// bit-identically at any worker count.
  double e2e_latency_s = 0.0;
};

namespace detail {

/// One submitted request's slot in the completion table. Transitions
/// exactly once: the worker that serves the request settles it (results
/// or error), or a cancel() beats the worker to it. Whoever wins fires
/// the completion hook — the losers drop their side silently.
struct RequestState {
  RequestState() { live_count.fetch_add(1, std::memory_order_relaxed); }
  ~RequestState() { live_count.fetch_sub(1, std::memory_order_relaxed); }
  RequestState(const RequestState&) = delete;
  RequestState& operator=(const RequestState&) = delete;

  /// Live RequestState instances across the process — the soak test's
  /// completion-state leak detector.
  inline static std::atomic<std::int64_t> live_count{0};

  std::int64_t first_id = 0;
  int expected = 0;
  /// The session's time source (null = plain condition_variable
  /// behavior, the standalone-state default): handle waits block
  /// through it and transitions notify through it, so a caller parked
  /// on wait() counts as a blocked actor under a VirtualClock. Set once
  /// at enqueue, before any other thread can see the state.
  std::shared_ptr<sim::Clock> clock;
  /// When submit() accepted the request (on the session clock): the
  /// base of end-to-end latency accounting and the epoch its deadline
  /// is measured from.
  std::chrono::steady_clock::time_point submitted_at{};
  /// Per-request deadline override in seconds from submit(); NaN means
  /// the session's per-route deadlines apply.
  double deadline_override_s = std::numeric_limits<double>::quiet_NaN();
  /// Scheduling priority the request was queued under (the per-submit
  /// override, or the best EngineConfig::route_priority it could land
  /// on). Immutable after enqueue.
  int queue_priority = 0;
  /// The explicit SubmitOptions::priority, kept apart from the resolved
  /// queue_priority so the offload stage can re-resolve an unset
  /// priority against the route the instance is then known to take.
  std::optional<int> priority_override;

  mutable std::mutex mutex;
  mutable std::condition_variable done_cv;
  bool done = false;       // guarded by mutex
  bool cancelled = false;  // guarded by mutex; implies done
  std::vector<InferenceResult> results;  // guarded by mutex
  std::string error;                     // guarded by mutex; nonempty = failed
  /// Set once a handle read the results (wait()/try_get()); the session
  /// then prunes the request from its round on a later submit(), so
  /// handle-only streaming callers don't accumulate every result ever
  /// served. drain() still returns requests that are merely consumed
  /// but not yet pruned.
  mutable bool consumed = false;  // guarded by mutex
  /// Fired exactly once by whichever transition wins. The session wraps
  /// the user's on_complete so it runs on the completion-callback
  /// thread, never on a serving worker.
  std::function<void()> completion_hook;  // guarded by mutex until moved out
  /// Run under the mutex when a cancel() wins, before any waiter can
  /// observe the transition — the session records the cancellation in
  /// its metrics here, so counters never lag the handle state.
  std::function<void()> cancel_hook;  // set once at enqueue

  /// Completes the request with its results. `on_win` runs under the
  /// mutex before any waiter can observe done (the session records its
  /// completion metrics there). False if the transition was lost (the
  /// request was cancelled first).
  template <typename OnWin>
  bool settle(std::vector<InferenceResult> request_results, OnWin on_win) {
    return transition([&] { results = std::move(request_results); }, on_win);
  }
  bool settle(std::vector<InferenceResult> request_results) {
    return settle(std::move(request_results), [] {});
  }

  /// Fails the request. False if the transition was lost.
  template <typename OnWin>
  bool fail(std::string why, OnWin on_win) {
    return transition([&] { error = std::move(why); }, on_win);
  }
  bool fail(std::string why) { return fail(std::move(why), [] {}); }

  /// Cancels the request. False if it had already settled (or was
  /// already cancelled) — a no-op then.
  bool cancel() {
    return transition([&] { cancelled = true; },
                      [&] {
                        if (cancel_hook) cancel_hook();
                      });
  }

  bool is_cancelled() const {
    std::lock_guard<std::mutex> lock(mutex);
    return cancelled;
  }

  /// Blocks (through the session clock when one is set) until the
  /// request settles. Call with `lock` held on `mutex`.
  void wait_done(std::unique_lock<std::mutex>& lock) const {
    if (clock) {
      clock->wait(lock, done_cv, sim::Clock::TimePoint::max(), [&] { return done; });
    } else {
      done_cv.wait(lock, [&] { return done; });
    }
  }

 private:
  template <typename Mutation, typename OnWin>
  bool transition(Mutation mutate, OnWin on_win) {
    std::function<void()> hook;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (done) return false;
      mutate();
      on_win();  // metrics land before done is observable
      done = true;
      hook = std::move(completion_hook);
      completion_hook = nullptr;
    }
    if (clock) {
      clock->notify(done_cv);
    } else {
      done_cv.notify_all();
    }
    if (hook) hook();  // outside the lock: the hook may take other locks
    return true;
  }
};

}  // namespace detail

/// Future-like view onto one submit() call's instances. Copyable and
/// cheap; all copies observe the same completion. A default-constructed
/// handle is invalid and throws on use.
class ResultHandle {
 public:
  ResultHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Result id of the request's first instance (instance i of the
  /// request gets id() + i), matching what submit() used to return.
  std::int64_t id() const { return checked().first_id; }

  /// Instances in the request.
  int count() const { return checked().expected; }

  /// True once the request settled (successfully, with an error, or by
  /// cancellation).
  bool ready() const {
    const detail::RequestState& state = checked();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.done;
  }

  /// Cancels the request. Returns true when the cancellation won — the
  /// request will never deliver results, its wait() returns empty, and
  /// if it was still queued the worker discards it without touching the
  /// engine or the offload backend. Returns false (a no-op) when the
  /// request had already settled; the results it delivered stay valid.
  bool cancel() { return checked().cancel(); }

  /// True when the request was cancelled before it could settle.
  bool cancelled() const {
    const detail::RequestState& state = checked();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.cancelled;
  }

  /// Blocks until the request settles, then returns its per-instance
  /// results ordered by id — empty if the request was cancelled. Throws
  /// std::runtime_error if the serving worker failed on this request.
  /// Reads are non-destructive (wait() can be called again), but mark
  /// the request consumed so the session can eventually prune it from
  /// the drain() round.
  std::vector<InferenceResult> wait() const {
    const detail::RequestState& state = checked();
    std::unique_lock<std::mutex> lock(state.mutex);
    state.wait_done(lock);
    if (!state.error.empty()) {
      throw std::runtime_error("InferenceSession worker failed: " + state.error);
    }
    state.consumed = true;
    return state.results;  // empty when cancelled
  }

  /// Non-blocking wait(): nullopt while the request is in flight; throws
  /// like wait() if the request failed; empty if it was cancelled.
  std::optional<std::vector<InferenceResult>> try_get() const {
    const detail::RequestState& state = checked();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.done) return std::nullopt;
    if (!state.error.empty()) {
      throw std::runtime_error("InferenceSession worker failed: " + state.error);
    }
    state.consumed = true;
    return state.results;
  }

 private:
  friend class InferenceSession;

  explicit ResultHandle(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}

  detail::RequestState& checked() const {
    if (!state_) throw std::logic_error("ResultHandle: invalid (default-constructed) handle");
    return *state_;
  }

  std::shared_ptr<detail::RequestState> state_;
};

}  // namespace meanet::runtime
