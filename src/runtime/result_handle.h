// Per-request completion for the async serving API.
//
// submit() hands back a ResultHandle instead of a bare id: a future-like
// view onto the request's slot in the session's completion table. Each
// submitted request owns one detail::RequestState; the worker that
// serves the request settles the state exactly once (results or error),
// and every handle sharing the state observes the transition through
// ready() / try_get() / wait(). Reads are non-destructive — results stay
// in the state, so drain() can still collect a whole round while callers
// hold handles onto individual requests.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/inference_policy.h"

namespace meanet::runtime {

/// Per-instance outcome of Alg. 2.
struct InferenceResult {
  std::int64_t id = 0;
  /// Final prediction in global label space (cloud answer when the
  /// instance was offloaded and the backend responded in time).
  int prediction = -1;
  core::Route route = core::Route::kMainExit;
  /// True when the instance was cloud-routed and the backend answered
  /// within the offload timeout.
  bool offloaded = false;
  /// True when the result was served from the session response cache.
  bool cached = false;
  // Exit-1 signals (only the ones the routing policy declared via
  // needed_signals() are computed; the rest stay 0).
  float entropy = 0.0f;
  float main_confidence = 0.0f;
  float margin = 0.0f;
  /// Max softmax score at exit 2 (0 when the extension did not run).
  float extension_confidence = 0.0f;
  /// Exit-1 argmax (the IsHard detector's input).
  int main_prediction = -1;
  /// Edge prediction before any cloud answer (the offload fallback).
  int edge_prediction = -1;
  // Per-instance cost (EngineConfig::costs pricing).
  double compute_energy_j = 0.0;
  double comm_energy_j = 0.0;
  double compute_time_s = 0.0;
  double comm_time_s = 0.0;
};

namespace detail {

/// One submitted request's slot in the completion table. Settled exactly
/// once by the worker that serves the request: either `results` (one per
/// instance, ordered by id) or `error` is filled before `done` flips.
struct RequestState {
  std::int64_t first_id = 0;
  int expected = 0;

  mutable std::mutex mutex;
  mutable std::condition_variable done_cv;
  bool done = false;                     // guarded by mutex
  std::vector<InferenceResult> results;  // guarded by mutex
  std::string error;                     // guarded by mutex; nonempty = failed
  /// Set once a handle read the results (wait()/try_get()); the session
  /// then prunes the request from its round on a later submit(), so
  /// handle-only streaming callers don't accumulate every result ever
  /// served. drain() still returns requests that are merely consumed
  /// but not yet pruned.
  mutable bool consumed = false;  // guarded by mutex

  void settle(std::vector<InferenceResult> request_results) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      results = std::move(request_results);
      done = true;
    }
    done_cv.notify_all();
  }

  void fail(std::string why) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      error = std::move(why);
      done = true;
    }
    done_cv.notify_all();
  }
};

}  // namespace detail

/// Future-like view onto one submit() call's instances. Copyable and
/// cheap; all copies observe the same completion. A default-constructed
/// handle is invalid and throws on use.
class ResultHandle {
 public:
  ResultHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Result id of the request's first instance (instance i of the
  /// request gets id() + i), matching what submit() used to return.
  std::int64_t id() const { return checked().first_id; }

  /// Instances in the request.
  int count() const { return checked().expected; }

  /// True once the request settled (successfully or with an error).
  bool ready() const {
    const detail::RequestState& state = checked();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.done;
  }

  /// Blocks until the request settles, then returns its per-instance
  /// results ordered by id. Throws std::runtime_error if the serving
  /// worker failed on this request. Reads are non-destructive (wait()
  /// can be called again), but mark the request consumed so the session
  /// can eventually prune it from the drain() round.
  std::vector<InferenceResult> wait() const {
    const detail::RequestState& state = checked();
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&] { return state.done; });
    if (!state.error.empty()) {
      throw std::runtime_error("InferenceSession worker failed: " + state.error);
    }
    state.consumed = true;
    return state.results;
  }

  /// Non-blocking wait(): nullopt while the request is in flight; throws
  /// like wait() if the request failed.
  std::optional<std::vector<InferenceResult>> try_get() const {
    const detail::RequestState& state = checked();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.done) return std::nullopt;
    if (!state.error.empty()) {
      throw std::runtime_error("InferenceSession worker failed: " + state.error);
    }
    state.consumed = true;
    return state.results;
  }

 private:
  friend class InferenceSession;

  explicit ResultHandle(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}

  const detail::RequestState& checked() const {
    if (!state_) throw std::logic_error("ResultHandle: invalid (default-constructed) handle");
    return *state_;
  }

  std::shared_ptr<detail::RequestState> state_;
};

}  // namespace meanet::runtime
