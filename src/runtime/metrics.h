// Session observability: counters and per-route service-latency
// percentiles for an InferenceSession, snapshotted via
// session.metrics().
//
// Latency accounting: every completed instance records its end-to-end
// latency — wall-clock from the submit() that accepted it to the moment
// its request settled, so queue wait, the edge pass, and the offload
// round-trip (or its timeout / deadline expiry) are all included. This
// is the latency a per-route deadline bounds. Percentiles are computed
// at snapshot time by nearest-rank over all recorded samples of a
// route.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "core/inference_policy.h"
#include "diag/value.h"

namespace meanet::runtime {

/// Latency distribution of one route's completed instances.
struct RouteLatencyStats {
  std::int64_t count = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Queue-wait distribution (submit() -> entering a worker batch) of the
/// requests served at one priority level.
struct PriorityWaitStats {
  int priority = 0;
  std::int64_t requests = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Point-in-time view of a session's counters. Plain data: safe to copy
/// out and diff across rounds.
struct SessionMetrics {
  /// Instances accepted by submit() (including run()'s chunks). Every
  /// accepted instance ends up in exactly one of completed_instances,
  /// cancelled_instances, or failed_instances.
  std::int64_t submitted_instances = 0;
  /// Instances with a settled result.
  std::int64_t completed_instances = 0;
  /// Instances of requests cancelled before their results settled
  /// (ResultHandle::cancel() won the race).
  std::int64_t cancelled_instances = 0;
  /// Instances of requests that failed with a worker error.
  std::int64_t failed_instances = 0;
  /// Completed instances whose routed deadline expired
  /// (EngineConfig::route_deadline_s / the per-submit override). A
  /// cloud-routed expiry keeps its edge prediction — distinct from
  /// offload_timeouts, which fire offload_timeout_s after dispatch;
  /// each instance is attributed to at most one of the two.
  std::int64_t deadline_expirations = 0;
  /// Most requests ever waiting in the bounded submit queue at once.
  std::int64_t queue_depth_high_water = 0;
  /// Instances rejected at submit() by deadline-aware admission: the
  /// estimated queue wait alone already exceeded every finite route
  /// deadline, so serving them could only produce expired results.
  /// Rejected instances are not counted in submitted_instances.
  std::int64_t admission_rejections = 0;

  /// Offload payloads handed to the dispatcher thread.
  std::int64_t offload_dispatches = 0;
  /// Instances that fell back to their edge prediction because the
  /// backend missed the offload timeout.
  std::int64_t offload_timeouts = 0;
  /// Dispatches whose backend threw or answered with the wrong shape.
  std::int64_t offload_failures = 0;

  /// Pops where the scheduler force-served the oldest waiting request
  /// because the starvation bound (EngineConfig::starvation_bound) was
  /// reached — the aging counter. Covers the worker queue and the
  /// offload dispatch queue.
  std::int64_t starvation_promotions = 0;

  /// Airtime charged on the session's (possibly shared) radio cell so
  /// far, in seconds, and that figure per wall-clock second of the
  /// cell's life. Utilization above ~1.0 means the attached stations
  /// jointly demand more airtime than the medium has — a saturated
  /// cell. Both 0 when no transport is configured.
  double cell_busy_s = 0.0;
  double cell_airtime_utilization = 0.0;

  /// Instances served from the response cache.
  std::int64_t cache_hits = 0;
  /// Entries currently held by the response cache.
  std::int64_t cache_entries = 0;
  /// Entries LRU-evicted from the response cache so far.
  std::int64_t cache_evictions = 0;

  /// Completed instances and latency percentiles per route, indexed by
  /// core::Route (use the accessors below).
  std::array<RouteLatencyStats, core::kNumRoutes> per_route{};

  /// Queue-wait percentiles of the served requests at each priority
  /// level that appeared, highest priority first. What the scheduler
  /// actually controls: under contention the high-priority rows should
  /// show the smaller tails.
  std::vector<PriorityWaitStats> queue_wait_by_priority;

  const RouteLatencyStats& route(core::Route route) const {
    return per_route[static_cast<std::size_t>(route)];
  }
  std::int64_t route_count(core::Route route) const { return this->route(route).count; }

  /// Queue-wait stats of one priority level; zeros when nothing was
  /// served at it.
  PriorityWaitStats priority_wait(int priority) const {
    for (const PriorityWaitStats& stats : queue_wait_by_priority) {
      if (stats.priority == priority) return stats;
    }
    return PriorityWaitStats{priority, 0, 0.0, 0.0, 0.0};
  }

  /// The metrics as a diag::Value tree — the shape an InferenceSession
  /// exports through the diagnostic registry (schema diag::
  /// kSchemaVersion). Every scalar in counter_names() appears as a
  /// top-level key; per-route percentiles live under "routes" keyed by
  /// core::route_name(), queue waits under "queue_wait_by_priority" as
  /// an array ordered highest priority first.
  diag::Value to_value() const;

  /// Names of every documented scalar counter in to_value()'s export,
  /// in emission order. The diag regression test walks this list, so a
  /// counter added to the struct without being wired into the export
  /// (or vice versa) fails loudly.
  static const std::vector<const char*>& counter_names();
};

/// Bounded, deterministic uniform sample of an unbounded stream
/// (Vitter's Algorithm R with a seeded splitmix64 replacement draw).
/// The first `capacity` values are kept verbatim; afterwards each new
/// value replaces a random held sample with probability capacity/seen,
/// so the held set stays a uniform sample of everything observed.
/// Memory is O(capacity) forever — the fix for the collector storing
/// every latency sample of a long-running serving process — and the
/// seeded draw makes percentile estimates reproducible for a given
/// record order.
class SampleReservoir {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit SampleReservoir(std::size_t capacity = kDefaultCapacity, std::uint64_t seed = 0)
      : capacity_(capacity == 0 ? 1 : capacity), rng_state_(seed * 0x9E3779B97F4A7C15ULL + 1) {}

  void add(double value);

  /// Values observed (not held) so far.
  std::int64_t count() const { return seen_; }
  /// Values currently held — never exceeds capacity().
  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::uint64_t next_random();

  std::size_t capacity_;
  std::uint64_t rng_state_;
  std::int64_t seen_ = 0;
  std::vector<double> samples_;
};

/// Thread-safe accumulator behind SessionMetrics. Workers record raw
/// samples into bounded reservoirs; snapshot() sorts each held set
/// once and reads the three percentile ranks, so the hot path never
/// pays for order maintenance and a long-lived session's memory stays
/// O(routes + priorities), not O(requests).
class MetricsCollector {
 public:
  void record_submitted(std::int64_t instances);
  /// One completed instance: tallies the route and stores its
  /// end-to-end (submit -> settle) latency sample.
  void record_completion(core::Route route, double seconds);
  /// One request entering a worker batch after `seconds` in the queue,
  /// scheduled at `priority`.
  void record_queue_wait(int priority, double seconds);
  void record_cancelled(std::int64_t instances);
  void record_failed(std::int64_t instances);
  void record_deadline_expired(std::int64_t instances);
  void record_admission_rejected(std::int64_t instances);
  void record_offload_dispatch();
  void record_offload_timeout(std::int64_t instances);
  void record_offload_failure();
  void record_cache_hits(std::int64_t hits);

  /// Current counters with percentiles reduced from the samples.
  /// queue_depth_high_water, starvation_promotions, the cell airtime
  /// figures, cache_entries, and cache_evictions are owned by the
  /// session and left 0 here.
  SessionMetrics snapshot() const;

 private:
  mutable std::mutex mutex_;
  SessionMetrics counters_;  // percentiles stay empty until snapshot()
  std::array<SampleReservoir, core::kNumRoutes> samples_;
  // Queue-wait samples keyed by priority, highest first (the snapshot
  // order of queue_wait_by_priority). Reservoirs are seeded from the
  // priority so a rebuilt collector reproduces the same estimates.
  std::map<int, SampleReservoir, std::greater<int>> wait_samples_;
};

/// Nearest-rank percentile (p in [0,1]) of an unsorted sample set; 0 for
/// an empty set. Exposed for the metrics tests. Copies and sorts —
/// fine for tests; snapshot paths sort once and use sorted_percentile.
double percentile(std::vector<double> samples, double p);

/// Nearest-rank percentile of an ALREADY ASCENDING-SORTED sample set;
/// 0 for an empty set. The O(1) read snapshot() uses after its single
/// per-set sort (the old code copied + re-sorted each set once per
/// percentile).
double sorted_percentile(const std::vector<double>& sorted, double p);

}  // namespace meanet::runtime
