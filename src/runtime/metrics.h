// Session observability: counters and per-route service-latency
// percentiles for an InferenceSession, snapshotted via
// session.metrics().
//
// Latency accounting: every completed instance records the wall-clock
// service time of the process() call that finalized it, measured from
// batch pickup to the moment its result was settled — cache hits settle
// at the lookup, main/extension instances after the edge pass, and
// cloud-routed instances after the offload round-trip (or its timeout).
// Percentiles are computed at snapshot time by nearest-rank over all
// recorded samples of a route.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/inference_policy.h"

namespace meanet::runtime {

/// Latency distribution of one route's completed instances.
struct RouteLatencyStats {
  std::int64_t count = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Point-in-time view of a session's counters. Plain data: safe to copy
/// out and diff across rounds.
struct SessionMetrics {
  /// Instances accepted by submit() (including run()'s chunks).
  std::int64_t submitted_instances = 0;
  /// Instances with a settled result.
  std::int64_t completed_instances = 0;
  /// Most requests ever waiting in the bounded submit queue at once.
  std::int64_t queue_depth_high_water = 0;

  /// Offload payloads handed to the dispatcher thread.
  std::int64_t offload_dispatches = 0;
  /// Instances that fell back to their edge prediction because the
  /// backend missed the offload timeout.
  std::int64_t offload_timeouts = 0;
  /// Dispatches whose backend threw or answered with the wrong shape.
  std::int64_t offload_failures = 0;

  /// Instances served from the response cache.
  std::int64_t cache_hits = 0;
  /// Entries currently held by the response cache.
  std::int64_t cache_entries = 0;

  /// Completed instances and latency percentiles per route, indexed by
  /// core::Route (use the accessors below).
  std::array<RouteLatencyStats, core::kNumRoutes> per_route{};

  const RouteLatencyStats& route(core::Route route) const {
    return per_route[static_cast<std::size_t>(route)];
  }
  std::int64_t route_count(core::Route route) const { return this->route(route).count; }
};

/// Thread-safe accumulator behind SessionMetrics. Workers record raw
/// samples; snapshot() sorts and reduces them to percentiles so the hot
/// path never pays for order maintenance.
class MetricsCollector {
 public:
  void record_submitted(std::int64_t instances);
  /// One completed instance: tallies the route and stores its service
  /// latency sample.
  void record_completion(core::Route route, double seconds);
  void record_offload_dispatch();
  void record_offload_timeout(std::int64_t instances);
  void record_offload_failure();
  void record_cache_hits(std::int64_t hits);

  /// Current counters with percentiles reduced from the samples.
  /// queue_depth_high_water and cache_entries are owned by the session
  /// and left 0 here.
  SessionMetrics snapshot() const;

 private:
  mutable std::mutex mutex_;
  SessionMetrics counters_;  // percentiles stay empty until snapshot()
  std::array<std::vector<double>, core::kNumRoutes> samples_;
};

/// Nearest-rank percentile (p in [0,1]) of an unsorted sample set; 0 for
/// an empty set. Exposed for the metrics tests.
double percentile(std::vector<double> samples, double p);

}  // namespace meanet::runtime
