#include "runtime/session.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "runtime/replica.h"
#include "tensor/ops.h"

namespace meanet::runtime {

namespace {

/// Normalizes a request tensor to [B, ...] (a rank-3 [C,H,W] single
/// instance becomes [1,C,H,W]).
Tensor normalize_batch(Tensor images) {
  if (images.shape().rank() == 3) {
    std::vector<int> dims{1};
    for (int d : images.shape().dims()) dims.push_back(d);
    return images.reshaped(Shape(dims));
  }
  if (images.shape().rank() != 4) {
    throw std::invalid_argument("InferenceSession: images must be [C,H,W] or [B,C,H,W]");
  }
  return images;
}

Shape instance_shape(const Shape& batch_shape) {
  std::vector<int> dims = batch_shape.dims();
  dims[0] = 1;
  return Shape(dims);
}

}  // namespace

core::RouteCounts count_routes(const std::vector<InferenceResult>& results) {
  core::RouteCounts counts;
  for (const InferenceResult& r : results) counts.add(r.route);
  return counts;
}

InferenceSession::InferenceSession(EngineConfig config)
    : batch_size_(config.batch_size),
      costs_(config.costs),
      queue_(static_cast<std::size_t>(std::max(1, config.queue_capacity))) {
  if (config.net == nullptr || config.dict == nullptr) {
    throw std::invalid_argument("InferenceSession: EngineConfig needs net and dict");
  }
  if (config.batch_size <= 0) {
    throw std::invalid_argument("InferenceSession: batch_size must be positive");
  }
  routing_ = config.policy
                 ? config.policy
                 : std::make_shared<core::EntropyThresholdPolicy>(*config.dict,
                                                                  config.policy_config);
  backend_ = config.backend
                 ? config.backend
                 : make_backend(config.offload_mode, config.cloud, config.feature_cloud);

  // One engine per worker: worker 0 serves on the primary net, worker
  // i > 0 on replicas[i-1] (layer forward passes cache activations, so
  // nets cannot be shared between threads).
  const int max_workers = 1 + static_cast<int>(config.replicas.size());
  const int worker_count = std::max(1, std::min(config.worker_threads, max_workers));
  engines_.reserve(static_cast<std::size_t>(worker_count));
  engines_.push_back(
      std::make_unique<core::EdgeInferenceEngine>(*config.net, *config.dict, routing_));
  for (int i = 1; i < worker_count; ++i) {
    core::MEANet* replica = config.replicas[static_cast<std::size_t>(i - 1)];
    if (replica == nullptr) throw std::invalid_argument("InferenceSession: null replica");
    sync_weights(*config.net, *replica);
    engines_.push_back(
        std::make_unique<core::EdgeInferenceEngine>(*replica, *config.dict, routing_));
  }
  workers_.reserve(static_cast<std::size_t>(worker_count));
  try {
    for (int i = 0; i < worker_count; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Thread spawn failed partway: shut down the workers that did
    // start before rethrowing, or their joinable std::thread members
    // would terminate the process during unwinding.
    queue_.close();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    throw;
  }
}

InferenceSession::~InferenceSession() {
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::int64_t InferenceSession::submit(Tensor images) {
  Tensor batch = normalize_batch(std::move(images));
  const int count = batch.shape().batch();
  if (count <= 0) throw std::invalid_argument("InferenceSession::submit: empty batch");
  const std::int64_t id = next_id_.fetch_add(count);
  {
    std::lock_guard<std::mutex> lock(results_mutex_);
    pending_instances_ += count;
  }
  if (!queue_.push(InferenceRequest{id, std::move(batch)})) {
    std::lock_guard<std::mutex> lock(results_mutex_);
    pending_instances_ -= count;
    throw std::logic_error("InferenceSession::submit: session is shut down");
  }
  return id;
}

std::vector<InferenceResult> InferenceSession::drain() {
  std::unique_lock<std::mutex> lock(results_mutex_);
  drained_.wait(lock, [&] { return pending_instances_ == 0; });
  if (!worker_error_.empty()) {
    const std::string error = worker_error_;
    worker_error_.clear();
    // Completed results are kept: a follow-up drain() returns them so
    // the caller can tell which instances survived the failure.
    throw std::runtime_error("InferenceSession worker failed: " + error);
  }
  std::vector<InferenceResult> results = std::move(results_);
  results_.clear();
  lock.unlock();
  std::sort(results.begin(), results.end(),
            [](const InferenceResult& a, const InferenceResult& b) { return a.id < b.id; });
  return results;
}

std::vector<InferenceResult> InferenceSession::run(const data::Dataset& dataset) {
  if (dataset.size() == 0) throw std::invalid_argument("InferenceSession::run: empty dataset");
  {
    // run() starts a fresh round: anything still buffered — survivors
    // of a previously failed drain(), or undrained submit() results —
    // is discarded along with any stale error, so a retry cannot trip
    // the overlap check below or rethrow a previous round's failure.
    std::lock_guard<std::mutex> lock(results_mutex_);
    if (pending_instances_ == 0) {
      results_.clear();
      worker_error_.clear();
    }
  }
  std::int64_t base = -1;
  for (int start = 0; start < dataset.size(); start += batch_size_) {
    const int count = std::min(batch_size_, dataset.size() - start);
    const std::int64_t id = submit(dataset.images.slice_batch(start, count));
    if (base < 0) base = id;
  }
  std::vector<InferenceResult> results = drain();
  // Rebase the session-global ids so result i maps to dataset instance
  // i even when the session served other work before this run.
  if (results.size() != static_cast<std::size_t>(dataset.size()) ||
      results.front().id != base) {
    // Foreign results can only appear when submit()/run() overlapped,
    // which run() does not support — fail loudly instead of letting
    // callers index dataset labels with misaligned ids.
    throw std::logic_error("InferenceSession::run: results do not match the dataset; "
                           "run() must not overlap other submit()/run() calls");
  }
  for (InferenceResult& r : results) r.id -= base;
  return results;
}

void InferenceSession::worker_loop(int worker_index) {
  core::EdgeInferenceEngine& engine = *engines_[static_cast<std::size_t>(worker_index)];
  // Runs one process() call, settling its instances exactly once: on
  // failure the instances are marked done (with the error recorded) so
  // drain() can never deadlock on a negative or stuck pending count.
  auto settle_failure = [&](const std::vector<InferenceRequest>& requests, const char* error) {
    std::int64_t failed = 0;
    for (const InferenceRequest& request : requests) failed += request.images.shape().batch();
    std::lock_guard<std::mutex> lock(results_mutex_);
    if (worker_error_.empty()) worker_error_ = error;
    pending_instances_ -= failed;
    drained_.notify_all();
  };
  auto safe_process = [&](const std::vector<InferenceRequest>& requests) {
    try {
      process(engine, requests);
    } catch (const std::exception& e) {
      settle_failure(requests, e.what());
    } catch (...) {
      // A non-std exception (e.g. from a user-supplied backend or
      // policy) must not escape the worker thread: that would
      // std::terminate the whole process.
      settle_failure(requests, "non-standard exception");
    }
  };
  // A request popped but not fitting the current batch (wrong geometry
  // or it would overflow the cap) seeds the next round instead of being
  // served undersized on its own.
  std::optional<InferenceRequest> carry;
  while (true) {
    std::optional<InferenceRequest> first =
        carry.has_value() ? std::exchange(carry, std::nullopt) : queue_.pop();
    if (!first.has_value()) return;  // closed and drained
    // Coalesce pending requests into one edge batch, up to batch_size
    // instances of the same geometry. A single request larger than
    // batch_size cannot be split and runs as-is.
    std::vector<InferenceRequest> batch;
    int rows = first->images.shape().batch();
    const Shape item_shape = instance_shape(first->images.shape());
    batch.push_back(std::move(*first));
    while (rows < batch_size_) {
      std::optional<InferenceRequest> next = queue_.try_pop();
      if (!next.has_value()) break;
      const int count = next->images.shape().batch();
      if (instance_shape(next->images.shape()) != item_shape ||
          rows + count > batch_size_) {
        carry = std::move(next);
        break;
      }
      rows += count;
      batch.push_back(std::move(*next));
    }
    safe_process(batch);
  }
}

void InferenceSession::process(core::EdgeInferenceEngine& engine,
                               const std::vector<InferenceRequest>& requests) {
  if (requests.empty()) return;
  std::int64_t rows = 0;
  for (const InferenceRequest& request : requests) rows += request.images.shape().batch();
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  // Stack the coalesced requests into one batch tensor; a lone request
  // (the common run() path submits full batches) is forwarded as-is.
  Tensor stacked;
  if (requests.size() > 1) {
    std::vector<int> dims = requests.front().images.shape().dims();
    dims[0] = static_cast<int>(rows);
    stacked = Tensor{Shape(dims)};
    const std::int64_t stride = stacked.numel() / rows;
    std::int64_t offset = 0;
    for (const InferenceRequest& request : requests) {
      const std::int64_t count = request.images.shape().batch();
      std::copy(request.images.data(), request.images.data() + count * stride,
                stacked.data() + offset * stride);
      for (std::int64_t i = 0; i < count; ++i) {
        ids[static_cast<std::size_t>(offset + i)] = request.id + i;
      }
      offset += count;
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i) {
      ids[static_cast<std::size_t>(i)] = requests.front().id + i;
    }
  }
  const Tensor& batch = requests.size() > 1 ? stacked : requests.front().images;

  core::BatchInference inference = engine.infer_batch(batch);
  std::vector<core::InstanceDecision>& decisions = inference.decisions;

  // Ship cloud-routed instances through the backend in one payload.
  std::vector<int> cloud_rows;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i].route == core::Route::kCloud) cloud_rows.push_back(static_cast<int>(i));
  }
  std::vector<int> cloud_predictions;
  if (!cloud_rows.empty()) {
    OffloadPayload payload;
    if (backend_->needs_images()) payload.images = ops::gather_rows(batch, cloud_rows);
    if (backend_->needs_features()) {
      payload.features = ops::gather_rows(inference.features, cloud_rows);
    }
    {
      std::lock_guard<std::mutex> lock(backend_mutex_);
      try {
        cloud_predictions = backend_->classify(payload);
      } catch (...) {
        // A throwing backend is an unreachable cloud (whatever it
        // throws): keep the edge's best guess rather than failing
        // edge-answered instances too.
        cloud_predictions.clear();
      }
    }
    if (!cloud_predictions.empty() && cloud_predictions.size() != cloud_rows.size()) {
      // A wrong-sized reply is a misbehaving backend; treat it like an
      // unreachable cloud (edge fallback, offloaded stays false) rather
      // than failing the edge-answered instances in this batch too.
      cloud_predictions.clear();
    }
  }

  // Price the work. An unset upload payload size is derived from the
  // backend's geometry-based estimate.
  sim::EdgeNodeCosts costs = costs_;
  if (costs.upload_bytes_per_instance == 0 && !cloud_rows.empty()) {
    costs.upload_bytes_per_instance =
        backend_->payload_bytes(instance_shape(batch.shape()),
                                instance_shape(inference.features.shape()));
  }

  std::vector<InferenceResult> batch_results(decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const core::InstanceDecision& d = decisions[i];
    InferenceResult& r = batch_results[i];
    r.id = ids[i];
    r.route = d.route;
    r.entropy = d.entropy;
    r.main_confidence = d.main_confidence;
    r.margin = d.margin;
    r.extension_confidence = d.extension_confidence;
    r.main_prediction = d.main_prediction;
    r.edge_prediction = d.prediction;
    r.prediction = d.prediction;
    r.compute_energy_j = costs.compute_energy_j(d.route);
    r.compute_time_s = costs.compute_time_s(d.route);
    r.comm_energy_j = costs.comm_energy_j(d.route);
    r.comm_time_s = costs.comm_time_s(d.route);
  }
  if (!cloud_predictions.empty()) {
    for (std::size_t i = 0; i < cloud_rows.size(); ++i) {
      InferenceResult& r = batch_results[static_cast<std::size_t>(cloud_rows[i])];
      r.prediction = cloud_predictions[i];
      r.offloaded = true;
    }
  }

  std::lock_guard<std::mutex> lock(results_mutex_);
  results_.insert(results_.end(), std::make_move_iterator(batch_results.begin()),
                  std::make_move_iterator(batch_results.end()));
  pending_instances_ -= static_cast<std::int64_t>(decisions.size());
  if (pending_instances_ == 0) drained_.notify_all();
}

}  // namespace meanet::runtime
