#include "runtime/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "runtime/replica.h"
#include "tensor/ops.h"

namespace meanet::runtime {

namespace {

/// Normalizes a request tensor to [B, ...] (a rank-3 [C,H,W] single
/// instance becomes [1,C,H,W]). The rank-3 path re-labels the tensor via
/// the rvalue reshaped() overload — no copy of the frame.
Tensor normalize_batch(Tensor images) {
  if (images.shape().rank() == 3) {
    std::vector<int> dims{1};
    for (int d : images.shape().dims()) dims.push_back(d);
    return std::move(images).reshaped(Shape(dims));
  }
  if (images.shape().rank() != 4) {
    throw std::invalid_argument("InferenceSession: images must be [C,H,W] or [B,C,H,W]");
  }
  return images;
}

Shape instance_shape(const Shape& batch_shape) {
  std::vector<int> dims = batch_shape.dims();
  dims[0] = 1;
  return Shape(dims);
}

/// FNV-1a over an instance's raw image bytes — the response-cache key.
/// Distinct frames colliding on all 64 bits is vanishingly unlikely for
/// the workloads served here; a hit is trusted without a byte compare.
std::uint64_t hash_instance(const float* data, std::int64_t count) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  const std::size_t n = static_cast<std::size_t>(count) * sizeof(float);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

core::RouteCounts count_routes(const std::vector<InferenceResult>& results) {
  core::RouteCounts counts;
  for (const InferenceResult& r : results) counts.add(r.route);
  return counts;
}

InferenceSession::InferenceSession(EngineConfig config)
    : batch_size_(config.batch_size),
      offload_timeout_s_(config.offload_timeout_s),
      costs_(config.costs),
      queue_(static_cast<std::size_t>(std::max(1, config.queue_capacity))),
      offload_queue_(static_cast<std::size_t>(std::max(1, config.queue_capacity))),
      cache_capacity_(config.response_cache_capacity > 0
                          ? static_cast<std::size_t>(config.response_cache_capacity)
                          : 0) {
  if (config.net == nullptr || config.dict == nullptr) {
    throw std::invalid_argument("InferenceSession: EngineConfig needs net and dict");
  }
  if (config.batch_size <= 0) {
    throw std::invalid_argument("InferenceSession: batch_size must be positive");
  }
  routing_ = config.policy
                 ? config.policy
                 : std::make_shared<core::EntropyThresholdPolicy>(*config.dict,
                                                                  config.policy_config);
  backend_ = config.backend
                 ? config.backend
                 : make_backend(config.offload_mode, config.cloud, config.feature_cloud);

  // One engine per worker: worker 0 serves on the primary net, worker
  // i > 0 on replicas[i-1] (layer forward passes cache activations, so
  // nets cannot be shared between threads).
  const int max_workers = 1 + static_cast<int>(config.replicas.size());
  const int worker_count = std::max(1, std::min(config.worker_threads, max_workers));
  engines_.reserve(static_cast<std::size_t>(worker_count));
  engines_.push_back(
      std::make_unique<core::EdgeInferenceEngine>(*config.net, *config.dict, routing_));
  for (int i = 1; i < worker_count; ++i) {
    core::MEANet* replica = config.replicas[static_cast<std::size_t>(i - 1)];
    if (replica == nullptr) throw std::invalid_argument("InferenceSession: null replica");
    sync_weights(*config.net, *replica);
    engines_.push_back(
        std::make_unique<core::EdgeInferenceEngine>(*replica, *config.dict, routing_));
  }
  workers_.reserve(static_cast<std::size_t>(worker_count));
  try {
    offload_worker_ = std::thread([this] { offload_loop(); });
    for (int i = 0; i < worker_count; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Thread spawn failed partway: shut down the threads that did start
    // before rethrowing, or their joinable std::thread members would
    // terminate the process during unwinding.
    queue_.close();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    offload_queue_.close();
    if (offload_worker_.joinable()) offload_worker_.join();
    throw;
  }
}

InferenceSession::~InferenceSession() {
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Workers are joined: nothing can enqueue offload jobs anymore, so the
  // dispatcher drains whatever is left and exits.
  offload_queue_.close();
  if (offload_worker_.joinable()) offload_worker_.join();
}

ResultHandle InferenceSession::submit(Tensor images) {
  return enqueue(std::move(images), /*track_in_round=*/true);
}

ResultHandle InferenceSession::enqueue(Tensor images, bool track_in_round) {
  Tensor batch = normalize_batch(std::move(images));
  const int count = batch.shape().batch();
  if (count <= 0) throw std::invalid_argument("InferenceSession::submit: empty batch");
  auto state = std::make_shared<detail::RequestState>();
  state->first_id = next_id_.fetch_add(count);
  state->expected = count;
  if (!queue_.push(InferenceRequest{state->first_id, std::move(batch), state})) {
    throw std::logic_error("InferenceSession::submit: session is shut down");
  }
  collector_.record_submitted(count);
  ResultHandle handle(std::move(state));
  if (track_in_round) {
    // Registration happens after the push: the worker may already have
    // settled the state, which only makes the later drain() trivial.
    std::lock_guard<std::mutex> lock(round_mutex_);
    if (round_.size() >= round_prune_threshold_) {
      // Prune requests already settled AND read through their handle:
      // a handle-only streaming caller (submit -> wait, never drain)
      // must not accumulate every result the session ever served. The
      // doubling threshold amortizes the scan to O(1) per submit.
      round_.erase(std::remove_if(round_.begin(), round_.end(),
                                  [](const ResultHandle& h) {
                                    const detail::RequestState& s = *h.state_;
                                    std::lock_guard<std::mutex> state_lock(s.mutex);
                                    return s.done && s.consumed;
                                  }),
                   round_.end());
      round_prune_threshold_ = std::max<std::size_t>(64, 2 * round_.size());
    }
    round_.push_back(handle);
  }
  return handle;
}

void InferenceSession::collect(const ResultHandle& handle, std::vector<InferenceResult>& out,
                               std::string& first_error) {
  const detail::RequestState& state = *handle.state_;
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done_cv.wait(lock, [&] { return state.done; });
  if (!state.error.empty()) {
    if (first_error.empty()) first_error = state.error;
    return;
  }
  out.insert(out.end(), state.results.begin(), state.results.end());
}

std::vector<InferenceResult> InferenceSession::drain() {
  std::vector<ResultHandle> round;
  std::vector<InferenceResult> results;
  {
    std::lock_guard<std::mutex> lock(round_mutex_);
    round.swap(round_);
    results = std::move(survivors_);
    survivors_.clear();
  }
  std::string first_error;
  for (const ResultHandle& handle : round) collect(handle, results, first_error);
  if (!first_error.empty()) {
    // Results of the requests that completed are kept: a follow-up
    // drain() returns them so the caller can tell which instances
    // survived the failure.
    std::lock_guard<std::mutex> lock(round_mutex_);
    survivors_.insert(survivors_.end(), std::make_move_iterator(results.begin()),
                      std::make_move_iterator(results.end()));
    throw std::runtime_error("InferenceSession worker failed: " + first_error);
  }
  std::sort(results.begin(), results.end(),
            [](const InferenceResult& a, const InferenceResult& b) { return a.id < b.id; });
  return results;
}

std::vector<InferenceResult> InferenceSession::run(const data::Dataset& dataset) {
  if (dataset.size() == 0) throw std::invalid_argument("InferenceSession::run: empty dataset");
  {
    // Fresh round: when nothing is in flight, survivors of an earlier
    // failed round are discarded so a retry returns only this run.
    std::lock_guard<std::mutex> lock(round_mutex_);
    if (round_.empty()) survivors_.clear();
  }
  // run()'s requests are not tracked in the submit() round: concurrent
  // streaming traffic keeps its own handles and drain(), and this call
  // waits exactly the handles it created.
  std::vector<ResultHandle> handles;
  std::vector<int> starts;
  handles.reserve(static_cast<std::size_t>((dataset.size() + batch_size_ - 1) / batch_size_));
  for (int start = 0; start < dataset.size(); start += batch_size_) {
    const int count = std::min(batch_size_, dataset.size() - start);
    handles.push_back(enqueue(dataset.images.slice_batch(start, count), false));
    starts.push_back(start);
  }
  std::vector<InferenceResult> results;
  results.reserve(static_cast<std::size_t>(dataset.size()));
  std::string first_error;
  for (std::size_t chunk = 0; chunk < handles.size(); ++chunk) {
    std::vector<InferenceResult> part;
    collect(handles[chunk], part, first_error);
    // Rebase the chunk's session-global ids so result i maps to dataset
    // instance i even when the session served other work before (or
    // concurrently with) this run.
    for (InferenceResult& r : part) r.id = starts[chunk] + (r.id - handles[chunk].id());
    results.insert(results.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  if (!first_error.empty()) {
    // Keep what completed for a follow-up drain(), mirroring drain()'s
    // failure contract. Note these ids are already dataset-rebased.
    std::lock_guard<std::mutex> lock(round_mutex_);
    survivors_.insert(survivors_.end(), std::make_move_iterator(results.begin()),
                      std::make_move_iterator(results.end()));
    throw std::runtime_error("InferenceSession worker failed: " + first_error);
  }
  std::sort(results.begin(), results.end(),
            [](const InferenceResult& a, const InferenceResult& b) { return a.id < b.id; });
  return results;
}

SessionMetrics InferenceSession::metrics() const {
  SessionMetrics m = collector_.snapshot();
  m.queue_depth_high_water = static_cast<std::int64_t>(queue_.high_water_mark());
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    m.cache_entries = static_cast<std::int64_t>(cache_.size());
  }
  return m;
}

void InferenceSession::worker_loop(int worker_index) {
  core::EdgeInferenceEngine& engine = *engines_[static_cast<std::size_t>(worker_index)];
  // Runs one process() call, settling its requests exactly once: on
  // failure every affected request is failed (with the error recorded)
  // so no handle — and therefore no drain() — can wait forever.
  auto settle_failure = [&](const std::vector<InferenceRequest>& requests, const char* error) {
    for (const InferenceRequest& request : requests) request.completion->fail(error);
  };
  auto safe_process = [&](const std::vector<InferenceRequest>& requests) {
    try {
      process(engine, requests);
    } catch (const std::exception& e) {
      settle_failure(requests, e.what());
    } catch (...) {
      // A non-std exception (e.g. from a user-supplied backend or
      // policy) must not escape the worker thread: that would
      // std::terminate the whole process.
      settle_failure(requests, "non-standard exception");
    }
  };
  // A request popped but not fitting the current batch (wrong geometry
  // or it would overflow the cap) seeds the next round instead of being
  // served undersized on its own.
  std::optional<InferenceRequest> carry;
  while (true) {
    std::optional<InferenceRequest> first =
        carry.has_value() ? std::exchange(carry, std::nullopt) : queue_.pop();
    if (!first.has_value()) return;  // closed and drained
    // Coalesce pending requests into one edge batch, up to batch_size
    // instances of the same geometry. A single request larger than
    // batch_size cannot be split and runs as-is.
    std::vector<InferenceRequest> batch;
    int rows = first->images.shape().batch();
    const Shape item_shape = instance_shape(first->images.shape());
    batch.push_back(std::move(*first));
    while (rows < batch_size_) {
      std::optional<InferenceRequest> next = queue_.try_pop();
      if (!next.has_value()) break;
      const int count = next->images.shape().batch();
      if (instance_shape(next->images.shape()) != item_shape ||
          rows + count > batch_size_) {
        carry = std::move(next);
        break;
      }
      rows += count;
      batch.push_back(std::move(*next));
    }
    safe_process(batch);
  }
}

void InferenceSession::offload_loop() {
  while (std::optional<OffloadJob> job = offload_queue_.pop()) {
    std::vector<int> predictions;
    bool failed = false;
    try {
      predictions = backend_->classify(job->payload);
    } catch (...) {
      // A throwing backend is an unreachable cloud (whatever it threw):
      // the affected instances keep their edge predictions.
      failed = true;
      predictions.clear();
    }
    {
      std::lock_guard<std::mutex> lock(job->ticket->mutex);
      job->ticket->failed = failed;
      job->ticket->predictions = std::move(predictions);
      job->ticket->done = true;
    }
    job->ticket->answered.notify_all();
  }
}

std::vector<int> InferenceSession::offload(OffloadPayload payload, std::size_t expected) {
  collector_.record_offload_dispatch();
  auto ticket = std::make_shared<OffloadTicket>();
  if (!offload_queue_.push(OffloadJob{std::move(payload), expected, ticket})) {
    return {};  // session shutting down: edge fallback
  }
  std::unique_lock<std::mutex> lock(ticket->mutex);
  if (std::isinf(offload_timeout_s_) && offload_timeout_s_ > 0.0) {
    ticket->answered.wait(lock, [&] { return ticket->done; });
  } else {
    const auto timeout = std::chrono::duration<double>(std::max(0.0, offload_timeout_s_));
    if (!ticket->answered.wait_for(lock, timeout, [&] { return ticket->done; })) {
      // The dispatcher still finishes the job eventually; its late
      // answer dies with the ticket. The instances fall back to their
      // edge predictions exactly like the NullBackend path.
      collector_.record_offload_timeout(static_cast<std::int64_t>(expected));
      return {};
    }
  }
  if (ticket->failed) {
    collector_.record_offload_failure();
    return {};
  }
  if (ticket->predictions.size() != expected) {
    // A wrong-sized reply is a misbehaving backend; treat it like an
    // unreachable cloud rather than failing the edge-answered instances
    // in the batch too. (An empty reply is the normal "unavailable".)
    if (!ticket->predictions.empty()) collector_.record_offload_failure();
    return {};
  }
  return std::move(ticket->predictions);
}

void InferenceSession::process(core::EdgeInferenceEngine& engine,
                               const std::vector<InferenceRequest>& requests) {
  if (requests.empty()) return;
  const SteadyClock::time_point started = SteadyClock::now();
  std::int64_t rows = 0;
  for (const InferenceRequest& request : requests) rows += request.images.shape().batch();
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  // Stack the coalesced requests into one batch tensor; a lone request
  // (the common run() path submits full batches) is forwarded as-is.
  Tensor stacked;
  if (requests.size() > 1) {
    std::vector<int> dims = requests.front().images.shape().dims();
    dims[0] = static_cast<int>(rows);
    stacked = Tensor{Shape(dims)};
    const std::int64_t stride = stacked.numel() / rows;
    std::int64_t offset = 0;
    for (const InferenceRequest& request : requests) {
      const std::int64_t count = request.images.shape().batch();
      std::copy(request.images.data(), request.images.data() + count * stride,
                stacked.data() + offset * stride);
      for (std::int64_t i = 0; i < count; ++i) {
        ids[static_cast<std::size_t>(offset + i)] = request.id + i;
      }
      offset += count;
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i) {
      ids[static_cast<std::size_t>(i)] = requests.front().id + i;
    }
  }
  const Tensor& batch = requests.size() > 1 ? stacked : requests.front().images;
  const std::int64_t stride = batch.numel() / rows;

  std::vector<InferenceResult> batch_results(static_cast<std::size_t>(rows));
  std::vector<double> latencies(static_cast<std::size_t>(rows), 0.0);

  // ---- Response cache: serve repeated frames without re-inferring ----
  std::vector<int> fresh_rows;  // rows the engine still has to serve
  std::vector<std::uint64_t> hashes;
  if (cache_capacity_ > 0) {
    hashes.resize(static_cast<std::size_t>(rows));
    for (std::int64_t i = 0; i < rows; ++i) {
      hashes[static_cast<std::size_t>(i)] = hash_instance(batch.data() + i * stride, stride);
    }
    std::int64_t hits = 0;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      for (std::int64_t i = 0; i < rows; ++i) {
        const auto it = cache_.find(hashes[static_cast<std::size_t>(i)]);
        if (it == cache_.end()) {
          fresh_rows.push_back(static_cast<int>(i));
          continue;
        }
        InferenceResult& r = batch_results[static_cast<std::size_t>(i)];
        r = it->second;
        r.id = ids[static_cast<std::size_t>(i)];
        r.cached = true;
        // A hit re-runs nothing: charge no compute and no upload, or
        // energy dashboards would double-bill work that never happened.
        r.compute_energy_j = 0.0;
        r.comm_energy_j = 0.0;
        r.compute_time_s = 0.0;
        r.comm_time_s = 0.0;
        ++hits;
      }
    }
    if (hits > 0) collector_.record_cache_hits(hits);
    const double cache_latency = seconds_since(started);
    for (std::int64_t i = 0; i < rows; ++i) {
      if (batch_results[static_cast<std::size_t>(i)].cached) {
        latencies[static_cast<std::size_t>(i)] = cache_latency;
      }
    }
  } else {
    fresh_rows.resize(static_cast<std::size_t>(rows));
    std::iota(fresh_rows.begin(), fresh_rows.end(), 0);
  }

  if (!fresh_rows.empty()) {
    const bool all_fresh = static_cast<std::int64_t>(fresh_rows.size()) == rows;
    const Tensor gathered = all_fresh ? Tensor{} : ops::gather_rows(batch, fresh_rows);
    const Tensor& engine_input = all_fresh ? batch : gathered;

    core::BatchInference inference = engine.infer_batch(engine_input);
    std::vector<core::InstanceDecision>& decisions = inference.decisions;
    const double edge_latency = seconds_since(started);

    // Ship cloud-routed instances to the offload dispatcher in one
    // payload; row indices are into the fresh sub-batch.
    std::vector<int> cloud_rows;
    for (std::size_t j = 0; j < decisions.size(); ++j) {
      if (decisions[j].route == core::Route::kCloud) cloud_rows.push_back(static_cast<int>(j));
    }
    std::vector<int> cloud_predictions;
    double cloud_latency = edge_latency;
    if (!cloud_rows.empty()) {
      OffloadPayload payload;
      if (backend_->needs_images()) payload.images = ops::gather_rows(engine_input, cloud_rows);
      if (backend_->needs_features()) {
        payload.features = ops::gather_rows(inference.features, cloud_rows);
      }
      cloud_predictions = offload(std::move(payload), cloud_rows.size());
      cloud_latency = seconds_since(started);
    }

    // Price the work. An unset upload payload size is derived from the
    // backend's geometry-based estimate.
    sim::EdgeNodeCosts costs = costs_;
    if (costs.upload_bytes_per_instance == 0 && !cloud_rows.empty()) {
      costs.upload_bytes_per_instance =
          backend_->payload_bytes(instance_shape(batch.shape()),
                                  instance_shape(inference.features.shape()));
    }

    for (std::size_t j = 0; j < decisions.size(); ++j) {
      const std::size_t row = static_cast<std::size_t>(fresh_rows[j]);
      const core::InstanceDecision& d = decisions[j];
      InferenceResult& r = batch_results[row];
      r.id = ids[row];
      r.route = d.route;
      r.entropy = d.entropy;
      r.main_confidence = d.main_confidence;
      r.margin = d.margin;
      r.extension_confidence = d.extension_confidence;
      r.main_prediction = d.main_prediction;
      r.edge_prediction = d.prediction;
      r.prediction = d.prediction;
      r.compute_energy_j = costs.compute_energy_j(d.route);
      r.compute_time_s = costs.compute_time_s(d.route);
      r.comm_energy_j = costs.comm_energy_j(d.route);
      r.comm_time_s = costs.comm_time_s(d.route);
      latencies[row] = edge_latency;
    }
    for (std::size_t k = 0; k < cloud_rows.size(); ++k) {
      const std::size_t row = static_cast<std::size_t>(fresh_rows[static_cast<std::size_t>(cloud_rows[k])]);
      if (!cloud_predictions.empty()) {
        batch_results[row].prediction = cloud_predictions[k];
        batch_results[row].offloaded = true;
      }
      latencies[row] = cloud_latency;
    }

    if (cache_capacity_ > 0) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      for (const int fresh_row : fresh_rows) {
        const InferenceResult& fresh_result = batch_results[static_cast<std::size_t>(fresh_row)];
        if (fresh_result.route == core::Route::kCloud && !fresh_result.offloaded) {
          // A degraded outcome (offload timeout / loss / unreachable
          // cloud) must not be frozen in: the next occurrence of this
          // frame deserves another shot at the cloud.
          continue;
        }
        const std::uint64_t key = hashes[static_cast<std::size_t>(fresh_row)];
        if (!cache_.emplace(key, fresh_result).second) {
          continue;  // another worker cached this frame first
        }
        cache_order_.push_back(key);
        if (cache_order_.size() > cache_capacity_) {
          cache_.erase(cache_order_.front());
          cache_order_.pop_front();
        }
      }
    }
  }

  for (std::int64_t i = 0; i < rows; ++i) {
    collector_.record_completion(batch_results[static_cast<std::size_t>(i)].route,
                                 latencies[static_cast<std::size_t>(i)]);
  }

  // Settle each coalesced request's slot in the completion table.
  std::size_t offset = 0;
  for (const InferenceRequest& request : requests) {
    const std::size_t count = static_cast<std::size_t>(request.images.shape().batch());
    request.completion->settle(std::vector<InferenceResult>(
        batch_results.begin() + static_cast<std::ptrdiff_t>(offset),
        batch_results.begin() + static_cast<std::ptrdiff_t>(offset + count)));
    offset += count;
  }
}

}  // namespace meanet::runtime
