#include "runtime/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "tensor/ops.h"
#include "tensor/qgemm.h"
#include "wire/wire_backend.h"

namespace meanet::runtime {

namespace {

/// Normalizes a request tensor to [B, ...] (a rank-3 [C,H,W] single
/// instance becomes [1,C,H,W]). The rank-3 path re-labels the tensor via
/// the rvalue reshaped() overload — no copy of the frame.
Tensor normalize_batch(Tensor images) {
  if (images.shape().rank() == 3) {
    std::vector<int> dims{1};
    for (int d : images.shape().dims()) dims.push_back(d);
    return std::move(images).reshaped(Shape(dims));
  }
  if (images.shape().rank() != 4) {
    throw std::invalid_argument("InferenceSession: images must be [C,H,W] or [B,C,H,W]");
  }
  return images;
}

Shape instance_shape(const Shape& batch_shape) {
  std::vector<int> dims = batch_shape.dims();
  dims[0] = 1;
  return Shape(dims);
}

}  // namespace

namespace detail {

namespace {

/// User callbacks must not take down the runner thread (or, on the
/// inline fallback, the transitioning thread): the documented pattern
/// `on_complete = [](const ResultHandle& h) { consume(h.wait()); }`
/// rethrows the worker's error from wait() when the request failed.
void run_guarded(const std::function<void()>& fn) {
  try {
    fn();
  } catch (...) {
    // A throwing completion callback is the caller's bug; swallowing it
    // beats std::terminate. The request itself already settled.
  }
}

}  // namespace

CallbackRunner::CallbackRunner(std::size_t capacity, std::shared_ptr<sim::Clock> clock)
    : clock_(sim::resolve_clock(std::move(clock))), queue_(capacity, clock_) {
  // The constructor must not return before the thread has registered as
  // a clock actor: otherwise a VirtualClock could advance past events
  // in the OS-scheduling-dependent window before the thread starts,
  // making virtual timelines depend on wall thread-start latency.
  std::mutex start_mutex;
  std::condition_variable start_cv;
  bool started = false;
  thread_ = std::thread([this, &start_mutex, &start_cv, &started] {
    // Registered actor: a VirtualClock must not advance while a
    // completion callback is still running (callbacks may submit or
    // cancel follow-up work at the current virtual instant).
    sim::ActorGuard actor(*clock_);
    {
      // Notify under the lock: the constructor (and the locals) may be
      // gone the instant `started` is observable.
      std::lock_guard<std::mutex> lock(start_mutex);
      started = true;
      start_cv.notify_one();
    }
    while (std::optional<std::function<void()>> fn = queue_.pop()) run_guarded(*fn);
  });
  std::unique_lock<std::mutex> lock(start_mutex);
  start_cv.wait(lock, [&] { return started; });
}

CallbackRunner::~CallbackRunner() { shutdown(); }

void CallbackRunner::post(std::function<void()> fn) {
  if (!queue_.push(fn)) run_guarded(fn);  // already shut down: run inline
}

void CallbackRunner::shutdown() {
  queue_.close();  // pop() drains what is queued, then the thread exits
  if (thread_.joinable()) thread_.join();
}

}  // namespace detail

core::RouteCounts count_routes(const std::vector<InferenceResult>& results) {
  core::RouteCounts counts;
  for (const InferenceResult& r : results) counts.add(r.route);
  return counts;
}

InferenceSession::InferenceSession(EngineConfig config)
    : batch_size_(config.batch_size),
      offload_timeout_s_(config.offload_timeout_s),
      route_deadline_s_(config.route_deadline_s),
      route_priority_(config.route_priority),
      default_priority_(
          *std::max_element(config.route_priority.begin(), config.route_priority.end())),
      costs_(config.costs),
      clock_(sim::resolve_clock(config.clock)),
      queue_(static_cast<std::size_t>(std::max(1, config.queue_capacity)),
             config.starvation_bound, clock_),
      offload_queue_(static_cast<std::size_t>(std::max(1, config.queue_capacity)),
                     config.starvation_bound, clock_) {
  if (config.net == nullptr || config.dict == nullptr) {
    throw std::invalid_argument("InferenceSession: EngineConfig needs net and dict");
  }
  if (config.batch_size <= 0) {
    throw std::invalid_argument("InferenceSession: batch_size must be positive");
  }
  // A request with no per-submit override can land on any route, so
  // admission may only reject when the queue wait blows the loosest of
  // the configured deadlines — i.e. when no route could still make it.
  admission_control_ = config.admission_control;
  quantized_inference_ = config.quantized_inference;
  if (config.batched_columns_budget_bytes != 0) {
    ops::set_batched_columns_budget(config.batched_columns_budget_bytes);
  }
  admission_deadline_s_ =
      *std::max_element(route_deadline_s_.begin(), route_deadline_s_.end());
  service_estimate_s_ = std::max(0.0, config.admission_service_estimate_s);
  routing_ = config.policy
                 ? config.policy
                 : std::make_shared<core::EntropyThresholdPolicy>(*config.dict,
                                                                  config.policy_config);
  if (config.backend) {
    backend_ = config.backend;
  } else if (config.offload_mode == OffloadMode::kWire) {
    wire::WireBackendConfig wire_config;
    wire_config.socket_path = config.wire_socket_path;
    wire_config.connect_timeout_s = config.wire_connect_timeout_s;
    wire_config.response_timeout_s = config.wire_response_timeout_s;
    backend_ = std::make_shared<wire::WireBackend>(std::move(wire_config));
  } else {
    backend_ = make_backend(config.offload_mode, config.cloud, config.feature_cloud);
  }
  if (config.transport) link_ = std::make_unique<SimulatedLink>(*config.transport, clock_);
  if (config.response_cache_capacity > 0) {
    cache_ = std::make_unique<ResponseCache>(
        static_cast<std::size_t>(config.response_cache_capacity));
  }
  callbacks_ = std::make_shared<detail::CallbackRunner>(
      static_cast<std::size_t>(std::max(1, config.queue_capacity)), clock_);

  // Every worker serves on the one shared net: eval-mode forwards are
  // cache-free and const-safe (nn/layer.h), so concurrent forwards do
  // not race. Each worker still owns an engine for its routing-signal
  // scratch. config.replicas is a deprecated no-op — extra nets are
  // neither required nor synced anymore.
  const int worker_count = std::max(1, config.worker_threads);
  engines_.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    engines_.push_back(
        std::make_unique<core::EdgeInferenceEngine>(*config.net, *config.dict, routing_));
  }
  workers_.reserve(static_cast<std::size_t>(worker_count));
  try {
    offload_worker_ = std::thread([this] { offload_loop(); });
    for (int i = 0; i < worker_count; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
    // Don't serve until every thread is a registered clock actor — see
    // the start_mutex_ comment in the header.
    std::unique_lock<std::mutex> lock(start_mutex_);
    start_cv_.wait(lock, [&] { return started_threads_ == worker_count + 1; });
  } catch (...) {
    // Thread spawn failed partway: shut down the threads that did start
    // before rethrowing, or their joinable std::thread members would
    // terminate the process during unwinding.
    queue_.close();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    offload_queue_.close();
    if (offload_worker_.joinable()) offload_worker_.join();
    throw;
  }

  // Register with the process diagnostics registry last: the session is
  // fully serving, so a concurrent snapshot sees a live object.
  static std::atomic<std::uint64_t> next_session_id{0};
  diag_name_ = "session/" + std::to_string(next_session_id.fetch_add(1));
  if (cache_) {
    cache_->set_diag_name("response_cache/" + diag_name_);
    cache_registration_ =
        diag::ScopedRegistration(diag::DiagnosticRegistry::global(), cache_.get());
  }
  diag_registration_ = diag::ScopedRegistration(diag::DiagnosticRegistry::global(), this);
}

diag::Value InferenceSession::diag_snapshot() const {
  diag::Value v = diag::Value::object();
  v.set("workers", worker_count());
  v.set("backend", backend_->describe());
  v.set("metrics", metrics().to_value());
  return v;
}

InferenceSession::~InferenceSession() {
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Workers are joined: nothing can enqueue offload jobs anymore, so the
  // dispatcher drains whatever is left and exits.
  offload_queue_.close();
  if (offload_worker_.joinable()) offload_worker_.join();
  // Every request has transitioned by now; flush their callbacks.
  callbacks_->shutdown();
}

ResultHandle InferenceSession::submit(Tensor images) {
  return enqueue(std::move(images), SubmitOptions{}, /*track_in_round=*/true);
}

ResultHandle InferenceSession::submit(Tensor images, SubmitOptions options) {
  return enqueue(std::move(images), std::move(options), /*track_in_round=*/true);
}

double InferenceSession::service_estimate_s() const {
  std::lock_guard<std::mutex> lock(service_mutex_);
  return service_estimate_s_;
}

void InferenceSession::observe_service(std::int64_t rows, double seconds) {
  if (rows <= 0 || !(seconds >= 0.0)) return;
  const double per_instance = seconds / static_cast<double>(rows);
  std::lock_guard<std::mutex> lock(service_mutex_);
  // EWMA over batches; the configured seed (or the first sample) is the
  // starting point.
  service_estimate_s_ = service_estimate_s_ <= 0.0
                            ? per_instance
                            : 0.8 * service_estimate_s_ + 0.2 * per_instance;
}

void InferenceSession::track_queued(int priority, std::int64_t count) {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  std::int64_t& queued = queued_by_priority_[priority];
  queued += count;
  if (queued <= 0) queued_by_priority_.erase(priority);
}

std::int64_t InferenceSession::queued_at_or_above(int priority) const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  std::int64_t ahead = 0;
  for (auto it = queued_by_priority_.lower_bound(priority); it != queued_by_priority_.end();
       ++it) {
    ahead += it->second;
  }
  return ahead;
}

void InferenceSession::check_admission(int count, double deadline_override_s, int priority) {
  if (!admission_control_) return;
  const double deadline_s =
      std::isnan(deadline_override_s) ? admission_deadline_s_ : deadline_override_s;
  if (!std::isfinite(deadline_s)) return;  // unbounded: nothing to miss
  const double estimate_s = service_estimate_s();
  if (estimate_s <= 0.0) return;  // nothing measured or seeded yet
  // Queue wait alone: instances already queued *ahead in the schedule*
  // of this request — same or higher priority — spread over the
  // serving workers. A low-priority backlog does not gate a
  // high-priority submit (the scheduler serves it first); the
  // request's own service time is deliberately not charged — admission
  // sheds load that is hopeless *before* it would even start.
  const double queue_wait_s = estimate_s * static_cast<double>(queued_at_or_above(priority)) /
                              static_cast<double>(workers_.empty() ? 1 : workers_.size());
  if (queue_wait_s <= deadline_s) return;
  collector_.record_admission_rejected(count);
  throw AdmissionRejected("InferenceSession::submit: estimated queue wait " +
                          std::to_string(queue_wait_s) + "s already exceeds the " +
                          std::to_string(deadline_s) + "s deadline");
}

ResultHandle InferenceSession::enqueue(Tensor images, SubmitOptions options,
                                       bool track_in_round) {
  Tensor batch = normalize_batch(std::move(images));
  const int count = batch.shape().batch();
  if (count <= 0) throw std::invalid_argument("InferenceSession::submit: empty batch");
  const int priority = options.priority.value_or(default_priority_);
  // Admission gates streaming submit() traffic only (track_in_round):
  // run() is the bulk-eval API — rejecting one of its chunks midway
  // would strand the results of the chunks already enqueued.
  if (track_in_round) check_admission(count, options.deadline_s, priority);
  auto state = std::make_shared<detail::RequestState>();
  state->first_id = next_id_.fetch_add(count);
  state->expected = count;
  state->clock = clock_;  // before any other thread can see the state
  state->submitted_at = clock_->now();
  state->deadline_override_s = options.deadline_s;
  // The route is only decided by the edge pass, so an un-overridden
  // request is queued at the best route priority it could land on
  // (mirroring admission's loosest-deadline rule); the explicit
  // override is kept so the offload stage can re-resolve against the
  // route the instance then actually takes.
  state->priority_override = options.priority;
  state->queue_priority = priority;
  // Runs under the state mutex when a cancel wins, so the counter never
  // lags the handle's cancelled() view. Capturing `this` is safe: a
  // cancel can only win while the request is unsettled, and the
  // destructor joins the workers — which settle everything — before the
  // session's members die.
  state->cancel_hook = [this, count] { collector_.record_cancelled(count); };
  ResultHandle handle(state);
  if (options.on_complete) {
    // The hook (fired once by whichever transition wins) posts the user
    // callback to the runner thread; if the runner is already gone —
    // only reachable from a caller's own late cancel — it runs inline.
    state->completion_hook = [weak = std::weak_ptr<detail::CallbackRunner>(callbacks_),
                              callback = std::move(options.on_complete), handle]() {
      std::function<void()> bound = [callback, handle] { callback(handle); };
      if (const std::shared_ptr<detail::CallbackRunner> runner = weak.lock()) {
        runner->post(std::move(bound));
      } else {
        detail::run_guarded(bound);
      }
    };
  }
  // Counted before the push: a worker that pops the request decrements
  // immediately, and incrementing afterwards could drive the admission
  // counter transiently negative.
  track_queued(priority, count);
  if (!queue_.push(InferenceRequest{state->first_id, std::move(batch), state},
                   request_key(*state))) {
    track_queued(priority, -count);
    // The hook holds a handle back onto this state; a request that never
    // transitions would leak the cycle. Break it before reporting.
    state->completion_hook = nullptr;
    throw std::logic_error("InferenceSession::submit: session is shut down");
  }
  collector_.record_submitted(count);
  if (track_in_round) {
    // Registration happens after the push: the worker may already have
    // settled the state, which only makes the later drain() trivial.
    std::lock_guard<std::mutex> lock(round_mutex_);
    if (round_.size() >= round_prune_threshold_) {
      // Prune requests already settled AND read through their handle:
      // a handle-only streaming caller (submit -> wait, never drain)
      // must not accumulate every result the session ever served. The
      // doubling threshold amortizes the scan to O(1) per submit.
      round_.erase(std::remove_if(round_.begin(), round_.end(),
                                  [](const ResultHandle& h) {
                                    const detail::RequestState& s = *h.state_;
                                    std::lock_guard<std::mutex> state_lock(s.mutex);
                                    return s.done && (s.consumed || s.cancelled);
                                  }),
                   round_.end());
      round_prune_threshold_ = std::max<std::size_t>(64, 2 * round_.size());
    }
    round_.push_back(handle);
  }
  return handle;
}

void InferenceSession::collect(const ResultHandle& handle, std::vector<InferenceResult>& out,
                               std::string& first_error) {
  const detail::RequestState& state = *handle.state_;
  std::unique_lock<std::mutex> lock(state.mutex);
  state.wait_done(lock);
  if (state.cancelled) return;  // a cancelled request contributes nothing
  if (!state.error.empty()) {
    if (first_error.empty()) first_error = state.error;
    return;
  }
  out.insert(out.end(), state.results.begin(), state.results.end());
}

std::vector<InferenceResult> InferenceSession::drain() {
  std::vector<ResultHandle> round;
  std::vector<InferenceResult> results;
  {
    std::lock_guard<std::mutex> lock(round_mutex_);
    round.swap(round_);
    results = std::move(survivors_);
    survivors_.clear();
  }
  std::string first_error;
  for (const ResultHandle& handle : round) collect(handle, results, first_error);
  if (!first_error.empty()) {
    // Results of the requests that completed are kept: a follow-up
    // drain() returns them so the caller can tell which instances
    // survived the failure.
    std::lock_guard<std::mutex> lock(round_mutex_);
    survivors_.insert(survivors_.end(), std::make_move_iterator(results.begin()),
                      std::make_move_iterator(results.end()));
    throw std::runtime_error("InferenceSession worker failed: " + first_error);
  }
  std::sort(results.begin(), results.end(),
            [](const InferenceResult& a, const InferenceResult& b) { return a.id < b.id; });
  return results;
}

std::vector<InferenceResult> InferenceSession::run(const data::Dataset& dataset) {
  if (dataset.size() == 0) throw std::invalid_argument("InferenceSession::run: empty dataset");
  {
    // Fresh round: when nothing is in flight, survivors of an earlier
    // failed round are discarded so a retry returns only this run.
    std::lock_guard<std::mutex> lock(round_mutex_);
    if (round_.empty()) survivors_.clear();
  }
  // run()'s requests are not tracked in the submit() round: concurrent
  // streaming traffic keeps its own handles and drain(), and this call
  // waits exactly the handles it created.
  std::vector<ResultHandle> handles;
  std::vector<int> starts;
  handles.reserve(static_cast<std::size_t>((dataset.size() + batch_size_ - 1) / batch_size_));
  for (int start = 0; start < dataset.size(); start += batch_size_) {
    const int count = std::min(batch_size_, dataset.size() - start);
    handles.push_back(enqueue(dataset.images.slice_batch(start, count), SubmitOptions{}, false));
    starts.push_back(start);
  }
  std::vector<InferenceResult> results;
  results.reserve(static_cast<std::size_t>(dataset.size()));
  std::string first_error;
  for (std::size_t chunk = 0; chunk < handles.size(); ++chunk) {
    std::vector<InferenceResult> part;
    collect(handles[chunk], part, first_error);
    // Rebase the chunk's session-global ids so result i maps to dataset
    // instance i even when the session served other work before (or
    // concurrently with) this run.
    for (InferenceResult& r : part) r.id = starts[chunk] + (r.id - handles[chunk].id());
    results.insert(results.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  if (!first_error.empty()) {
    // Keep what completed for a follow-up drain(), mirroring drain()'s
    // failure contract. Note these ids are already dataset-rebased.
    std::lock_guard<std::mutex> lock(round_mutex_);
    survivors_.insert(survivors_.end(), std::make_move_iterator(results.begin()),
                      std::make_move_iterator(results.end()));
    throw std::runtime_error("InferenceSession worker failed: " + first_error);
  }
  std::sort(results.begin(), results.end(),
            [](const InferenceResult& a, const InferenceResult& b) { return a.id < b.id; });
  return results;
}

SessionMetrics InferenceSession::metrics() const {
  SessionMetrics m = collector_.snapshot();
  m.queue_depth_high_water = static_cast<std::int64_t>(queue_.high_water_mark());
  m.starvation_promotions =
      queue_.starvation_promotions() + offload_queue_.starvation_promotions();
  if (link_) {
    m.cell_busy_s = link_->cell().busy_seconds();
    m.cell_airtime_utilization = link_->cell().utilization();
  }
  if (cache_) {
    m.cache_entries = static_cast<std::int64_t>(cache_->size());
    m.cache_evictions = cache_->evictions();
  }
  return m;
}

SchedKey InferenceSession::request_key(const detail::RequestState& state) const {
  SchedKey key;
  key.priority = state.queue_priority;
  // Earliest-deadline-first among equal priorities: the tightest bound
  // the request could face on any route (with an override, that is just
  // submit + override on every route).
  for (int r = 0; r < core::kNumRoutes; ++r) {
    key.deadline = std::min(key.deadline, deadline_at(state, static_cast<core::Route>(r)));
  }
  return key;
}

InferenceSession::SteadyClock::time_point InferenceSession::deadline_at(
    const detail::RequestState& state, core::Route route) const {
  // submitted_at and deadline_override_s are immutable after enqueue.
  double limit = state.deadline_override_s;
  if (std::isnan(limit)) limit = route_deadline_s_[static_cast<std::size_t>(route)];
  // Anything beyond ~30 years (including infinity) is "unbounded";
  // the cast below would overflow otherwise.
  if (!(limit < 1e9)) return SteadyClock::time_point::max();
  return state.submitted_at +
         std::chrono::duration_cast<SteadyClock::duration>(std::chrono::duration<double>(limit));
}

void InferenceSession::mark_started() {
  std::lock_guard<std::mutex> lock(start_mutex_);
  ++started_threads_;
  start_cv_.notify_all();
}

void InferenceSession::worker_loop(int worker_index) {
  // Registered actor for the loop's lifetime: a VirtualClock only
  // advances while every worker is parked in a queue pop or a timed
  // wait, never while one is mid-batch.
  sim::ActorGuard actor(*clock_);
  // Per-thread precision selection: every eval forward this worker runs
  // uses the session's configured compute path (the flag is
  // thread-local, so co-resident sessions can differ).
  ops::QuantizedScope quantized(quantized_inference_);
  mark_started();
  core::EdgeInferenceEngine& engine = *engines_[static_cast<std::size_t>(worker_index)];
  // A request cancelled while it sat in the queue is discarded here,
  // before it can touch the engine or the offload backend (the cancel
  // transition itself already recorded the metrics).
  auto discard_if_cancelled = [&](const InferenceRequest& request) {
    return request.completion->is_cancelled();
  };
  // Runs one process() call, settling its requests exactly once: on
  // failure every affected request is failed (with the error recorded)
  // so no handle — and therefore no drain() — can wait forever.
  auto settle_failure = [&](const std::vector<InferenceRequest>& requests, const char* error) {
    for (const InferenceRequest& request : requests) {
      const std::int64_t count = request.images.shape().batch();
      request.completion->fail(error, [&] { collector_.record_failed(count); });
    }
  };
  auto safe_process = [&](const std::vector<InferenceRequest>& requests) {
    std::int64_t rows = 0;
    for (const InferenceRequest& request : requests) rows += request.images.shape().batch();
    const SteadyClock::time_point started = clock_->now();
    try {
      process(engine, requests);
      // Feed the measured per-instance service time into the admission
      // estimate (successful batches only; a failing batch's timing
      // says nothing about healthy service). Measured on the session
      // clock: under a VirtualClock the raw compute is instantaneous
      // and only simulated delays (injected latency, transfers) count.
      observe_service(rows, sim::Clock::seconds_between(started, clock_->now()));
    } catch (const std::exception& e) {
      settle_failure(requests, e.what());
    } catch (...) {
      // A non-std exception (e.g. from a user-supplied backend or
      // policy) must not escape the worker thread: that would
      // std::terminate the whole process.
      settle_failure(requests, "non-standard exception");
    }
  };
  // Every successful pop leaves the popped instances "in service" from
  // the admission estimator's point of view; a requeued request (wrong
  // geometry or batch overflow) goes back to "queued".
  auto popped = [&](const InferenceRequest& request) {
    track_queued(request.completion->queue_priority, -request.images.shape().batch());
  };
  auto unpopped = [&](const InferenceRequest& request) {
    track_queued(request.completion->queue_priority, request.images.shape().batch());
  };
  while (true) {
    std::optional<Scheduled<InferenceRequest>> first = queue_.pop();
    if (!first.has_value()) return;  // closed and drained
    popped(first->item);
    if (discard_if_cancelled(first->item)) continue;
    // Coalesce pending requests into one edge batch, up to batch_size
    // instances of the same geometry, taking them in the queue's
    // scheduling order. A request that does not fit (wrong geometry or
    // it would overflow the cap) is requeued under its original key and
    // arrival seq — never parked on this worker — so a higher-priority
    // arrival can still overtake it before the next batch forms.
    std::vector<InferenceRequest> batch;
    int rows = first->item.images.shape().batch();
    const Shape item_shape = instance_shape(first->item.images.shape());
    batch.push_back(std::move(first->item));
    while (rows < batch_size_) {
      std::optional<Scheduled<InferenceRequest>> next = queue_.try_pop();
      if (!next.has_value()) break;
      popped(next->item);
      if (discard_if_cancelled(next->item)) continue;
      const int count = next->item.images.shape().batch();
      if (instance_shape(next->item.images.shape()) != item_shape ||
          rows + count > batch_size_) {
        unpopped(next->item);
        queue_.requeue(std::move(*next));
        break;
      }
      rows += count;
      batch.push_back(std::move(next->item));
    }
    // Queue-wait accounting happens once per request, when it finally
    // enters a batch (a requeued request is charged its whole wait).
    const SteadyClock::time_point batched_at = clock_->now();
    for (const InferenceRequest& request : batch) {
      collector_.record_queue_wait(
          request.completion->queue_priority,
          std::chrono::duration<double>(batched_at - request.completion->submitted_at).count());
    }
    safe_process(batch);
  }
}

void InferenceSession::offload_loop() {
  // The dispatcher is an actor too: while it occupies the cell the
  // VirtualClock advances through its scheduled transfer completions.
  sim::ActorGuard actor(*clock_);
  mark_started();
  while (std::optional<Scheduled<OffloadJob>> scheduled = offload_queue_.pop()) {
    OffloadJob& job = scheduled->item;
    OffloadTicket& ticket = *job.ticket;
    // Simulated transport: the payload's upload occupies this station's
    // share of the (possibly shared) cell for its transfer duration
    // (WiFi-derived +base RTT +jitter, keyed by the payload's first
    // result id so the draw does not depend on dispatch interleaving) —
    // a blocking cell transfer on the session clock, so under
    // activity-dependent sharing the elapsed time also depends on who
    // else is transmitting. An abandoned ticket cuts the transfer short
    // — the sender gave up at its offload timeout or deadline, so
    // nothing keeps transmitting — and skips the backend entirely; the
    // giving-up waiter pokes the link so the cancel is seen promptly.
    const std::uint64_t transfer_key = static_cast<std::uint64_t>(job.first_id);
    auto ticket_abandoned = [&ticket] {
      std::lock_guard<std::mutex> lock(ticket.mutex);
      return ticket.abandoned;
    };
    double upload_s = 0.0;
    bool abandoned = false;
    if (link_) {
      const sim::TransferOutcome up =
          link_->upload(transfer_key, job.payload_bytes, ticket_abandoned);
      upload_s = up.delay_s;
      abandoned = up.cancelled;
    } else {
      abandoned = ticket_abandoned();
    }
    if (abandoned) {
      {
        std::lock_guard<std::mutex> lock(ticket.mutex);
        ticket.done = true;  // nobody waits anymore; keep the slip coherent
      }
      clock_->notify(ticket.answered);
      continue;
    }
    std::vector<int> predictions;
    bool failed = false;
    try {
      predictions = backend_->classify(job.payload);
    } catch (...) {
      // A throwing backend is an unreachable cloud (whatever it threw):
      // the affected instances keep their edge predictions.
      failed = true;
      predictions.clear();
    }
    // The answer is not free: its bytes ride the downlink, and only
    // after that transfer does the waiting worker see it. A waiter that
    // gives up mid-downlink abandons the ticket like mid-upload.
    double downlink_s = 0.0;
    if (link_ && !failed && !predictions.empty()) {
      const std::int64_t response_bytes =
          link_->response_bytes(static_cast<std::int64_t>(predictions.size()));
      if (response_bytes > 0) {
        const sim::TransferOutcome down =
            link_->download(transfer_key, response_bytes, ticket_abandoned);
        downlink_s = down.delay_s;
        if (down.cancelled) {
          {
            std::lock_guard<std::mutex> lock(ticket.mutex);
            ticket.done = true;
          }
          clock_->notify(ticket.answered);
          continue;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(ticket.mutex);
      ticket.failed = failed;
      ticket.predictions = std::move(predictions);
      ticket.answered_at = clock_->now();
      ticket.upload_s = upload_s;
      ticket.downlink_s = downlink_s;
      ticket.done = true;
    }
    clock_->notify(ticket.answered);
  }
}

InferenceSession::OffloadAnswer InferenceSession::offload(OffloadPayload payload,
                                                          std::size_t expected,
                                                          std::int64_t payload_bytes,
                                                          std::int64_t first_id, SchedKey key,
                                                          double wait_bound_s) {
  collector_.record_offload_dispatch();
  auto ticket = std::make_shared<OffloadTicket>();
  if (!offload_queue_.push(
          OffloadJob{std::move(payload), expected, payload_bytes, first_id, ticket}, key)) {
    return {};  // session shutting down: edge fallback
  }
  std::unique_lock<std::mutex> lock(ticket->mutex);
  const sim::Clock::TimePoint bound =
      (std::isinf(wait_bound_s) && wait_bound_s > 0.0)
          ? sim::Clock::TimePoint::max()
          : sim::Clock::after(clock_->now(), std::max(0.0, wait_bound_s));
  if (!clock_->wait(lock, ticket->answered, bound, [&] { return ticket->done; })) {
    // Give up: mark the slip abandoned so the dispatcher stops the
    // simulated upload and never bothers the backend; a late answer
    // dies with the ticket. The caller attributes the cause per
    // instance (offload timeout vs deadline expiry) and keeps edge
    // predictions, exactly like the NullBackend path. The poke() makes
    // a dispatcher parked mid-transfer re-check the abandonment flag.
    ticket->abandoned = true;
    lock.unlock();
    clock_->notify(ticket->answered);
    if (link_) link_->poke();
    OffloadAnswer answer;
    answer.gave_up = true;
    return answer;
  }
  if (ticket->failed) {
    collector_.record_offload_failure();
    OffloadAnswer answer;
    answer.failed = true;
    return answer;
  }
  if (ticket->predictions.size() != expected) {
    // A wrong-sized reply is a misbehaving backend; treat it like an
    // unreachable cloud rather than failing the edge-answered instances
    // in the batch too. (An empty reply is the normal "unavailable".)
    if (!ticket->predictions.empty()) collector_.record_offload_failure();
    return {};
  }
  OffloadAnswer answer;
  answer.predictions = std::move(ticket->predictions);
  answer.answered_at = ticket->answered_at;
  answer.upload_s = ticket->upload_s;
  answer.downlink_s = ticket->downlink_s;
  return answer;
}

void InferenceSession::process(core::EdgeInferenceEngine& engine,
                               const std::vector<InferenceRequest>& requests) {
  if (requests.empty()) return;
  std::int64_t rows = 0;
  for (const InferenceRequest& request : requests) rows += request.images.shape().batch();
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  std::vector<int> req_of_row(static_cast<std::size_t>(rows));
  // Stack the coalesced requests into one batch tensor; a lone request
  // (the common run() path submits full batches) is forwarded as-is.
  Tensor stacked;
  if (requests.size() > 1) {
    std::vector<int> dims = requests.front().images.shape().dims();
    dims[0] = static_cast<int>(rows);
    stacked = Tensor{Shape(dims)};
    const std::int64_t stride = stacked.numel() / rows;
    std::int64_t offset = 0;
    for (std::size_t q = 0; q < requests.size(); ++q) {
      const InferenceRequest& request = requests[q];
      const std::int64_t count = request.images.shape().batch();
      std::copy(request.images.data(), request.images.data() + count * stride,
                stacked.data() + offset * stride);
      for (std::int64_t i = 0; i < count; ++i) {
        ids[static_cast<std::size_t>(offset + i)] = request.id + i;
        req_of_row[static_cast<std::size_t>(offset + i)] = static_cast<int>(q);
      }
      offset += count;
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i) {
      ids[static_cast<std::size_t>(i)] = requests.front().id + i;
      req_of_row[static_cast<std::size_t>(i)] = 0;
    }
  }
  const Tensor& batch = requests.size() > 1 ? stacked : requests.front().images;
  const std::int64_t stride = batch.numel() / rows;

  std::vector<InferenceResult> batch_results(static_cast<std::size_t>(rows));

  // ---- Response cache: serve repeated frames without re-inferring ----
  std::vector<int> fresh_rows;  // rows the engine still has to serve
  if (cache_) {
    std::int64_t hits = 0;
    for (std::int64_t i = 0; i < rows; ++i) {
      std::optional<InferenceResult> hit = cache_->lookup(batch.data() + i * stride, stride);
      if (!hit) {
        fresh_rows.push_back(static_cast<int>(i));
        continue;
      }
      InferenceResult& r = batch_results[static_cast<std::size_t>(i)];
      r = *hit;
      r.id = ids[static_cast<std::size_t>(i)];
      r.cached = true;
      // A hit re-runs nothing: charge no compute and no upload, or
      // energy dashboards would double-bill work that never happened.
      r.compute_energy_j = 0.0;
      r.comm_energy_j = 0.0;
      r.compute_time_s = 0.0;
      r.comm_time_s = 0.0;
      r.upload_time_s = 0.0;
      r.download_time_s = 0.0;
      ++hits;
    }
    if (hits > 0) collector_.record_cache_hits(hits);
  } else {
    fresh_rows.resize(static_cast<std::size_t>(rows));
    std::iota(fresh_rows.begin(), fresh_rows.end(), 0);
  }

  if (!fresh_rows.empty()) {
    const bool all_fresh = static_cast<std::int64_t>(fresh_rows.size()) == rows;
    const Tensor gathered = all_fresh ? Tensor{} : ops::gather_rows(batch, fresh_rows);
    const Tensor& engine_input = all_fresh ? batch : gathered;

    core::BatchInference inference = engine.infer_batch(engine_input);
    std::vector<core::InstanceDecision>& decisions = inference.decisions;

    // Ship cloud-routed instances to the offload dispatcher in one
    // payload; row indices are into the fresh sub-batch. An instance
    // whose request was cancelled, or whose deadline already passed
    // while it sat in the queue, is excluded — it keeps its edge
    // prediction and never touches the backend.
    std::vector<int> cloud_rows;
    const SteadyClock::time_point routed_at = clock_->now();
    for (std::size_t j = 0; j < decisions.size(); ++j) {
      if (decisions[j].route != core::Route::kCloud) continue;
      const std::size_t row = static_cast<std::size_t>(fresh_rows[j]);
      const detail::RequestState& state =
          *requests[static_cast<std::size_t>(req_of_row[row])].completion;
      if (state.is_cancelled()) continue;
      if (routed_at >= deadline_at(state, core::Route::kCloud)) {
        batch_results[row].deadline_expired = true;  // expired while queued
        continue;
      }
      cloud_rows.push_back(static_cast<int>(j));
    }
    OffloadAnswer answer;
    SteadyClock::time_point gave_up_at{};
    if (!cloud_rows.empty()) {
      OffloadPayload payload;
      if (backend_->needs_images()) payload.images = ops::gather_rows(engine_input, cloud_rows);
      if (backend_->needs_features()) {
        payload.features = ops::gather_rows(inference.features, cloud_rows);
      }
      const std::int64_t payload_bytes =
          backend_->payload_bytes(instance_shape(batch.shape()),
                                  instance_shape(inference.features.shape())) *
          static_cast<std::int64_t>(cloud_rows.size());
      // Wait no longer than the offload timeout, and no longer than the
      // last payload instance's deadline keeps anyone interested. The
      // pending upload is ordered against the other dispatch-queue
      // entries by the same (priority, deadline, arrival) key as the
      // worker queue — the route is known now, so an unset priority
      // resolves against route_priority[kCloud], and the key's deadline
      // is the payload's *tightest* instance deadline.
      double max_remaining_s = 0.0;
      SchedKey job_key;
      job_key.priority = std::numeric_limits<int>::min();
      for (const int j : cloud_rows) {
        const std::size_t row = static_cast<std::size_t>(fresh_rows[static_cast<std::size_t>(j)]);
        const detail::RequestState& state =
            *requests[static_cast<std::size_t>(req_of_row[row])].completion;
        const SteadyClock::time_point deadline = deadline_at(state, core::Route::kCloud);
        const double remaining_s =
            deadline == SteadyClock::time_point::max()
                ? std::numeric_limits<double>::infinity()
                : std::chrono::duration<double>(deadline - routed_at).count();
        max_remaining_s = std::max(max_remaining_s, remaining_s);
        job_key.priority = std::max(
            job_key.priority, state.priority_override.value_or(
                                  route_priority_[static_cast<std::size_t>(core::Route::kCloud)]));
        job_key.deadline = std::min(job_key.deadline, deadline);
      }
      const std::int64_t first_id =
          ids[static_cast<std::size_t>(fresh_rows[static_cast<std::size_t>(cloud_rows.front())])];
      answer = offload(std::move(payload), cloud_rows.size(), payload_bytes, first_id, job_key,
                       std::min(offload_timeout_s_, max_remaining_s));
      gave_up_at = clock_->now();
    }

    // Price the work. An unset upload payload size is derived from the
    // backend's geometry-based estimate.
    sim::EdgeNodeCosts costs = costs_;
    if (costs.upload_bytes_per_instance == 0 && !cloud_rows.empty()) {
      costs.upload_bytes_per_instance =
          backend_->payload_bytes(instance_shape(batch.shape()),
                                  instance_shape(inference.features.shape()));
    }

    for (std::size_t j = 0; j < decisions.size(); ++j) {
      const std::size_t row = static_cast<std::size_t>(fresh_rows[j]);
      const core::InstanceDecision& d = decisions[j];
      InferenceResult& r = batch_results[row];
      r.id = ids[row];
      r.route = d.route;
      r.entropy = d.entropy;
      r.main_confidence = d.main_confidence;
      r.margin = d.margin;
      r.extension_confidence = d.extension_confidence;
      r.main_prediction = d.main_prediction;
      r.edge_prediction = d.prediction;
      r.prediction = d.prediction;
      r.compute_energy_j = costs.compute_energy_j(d.route);
      r.compute_time_s = costs.compute_time_s(d.route);
      r.comm_energy_j = costs.comm_energy_j(d.route);
      r.comm_time_s = costs.comm_time_s(d.route);
    }
    // Per-instance attribution of the dispatch outcome, each instance
    // to exactly one cause: a cloud answer is used only if it arrived
    // before the instance's deadline (an answer past it, or a give-up
    // past it, is a deadline expiry); a give-up before the deadline is
    // an offload timeout; a prompt-but-empty reply (lossy link,
    // NullBackend) or a backend failure is a drop — neither flag.
    const bool answered = !answer.predictions.empty();
    std::int64_t timed_out = 0;
    for (std::size_t k = 0; k < cloud_rows.size(); ++k) {
      const std::size_t row =
          static_cast<std::size_t>(fresh_rows[static_cast<std::size_t>(cloud_rows[k])]);
      const detail::RequestState& state =
          *requests[static_cast<std::size_t>(req_of_row[row])].completion;
      const SteadyClock::time_point deadline = deadline_at(state, core::Route::kCloud);
      if (answered && answer.answered_at <= deadline) {
        batch_results[row].prediction = answer.predictions[k];
        batch_results[row].offloaded = true;
        // Simulated transfer occupancy of the payload that delivered
        // this answer (whole-payload figures; coalesced instances share
        // one transfer).
        batch_results[row].upload_time_s = answer.upload_s;
        batch_results[row].download_time_s = answer.downlink_s;
      } else if (answered) {
        batch_results[row].deadline_expired = true;  // the answer came too late
      } else if (answer.gave_up) {
        if (gave_up_at < deadline) {
          ++timed_out;
        } else {
          batch_results[row].deadline_expired = true;
        }
      }
    }
    if (timed_out > 0) collector_.record_offload_timeout(timed_out);

    if (cache_) {
      for (const int fresh_row : fresh_rows) {
        const InferenceResult& fresh_result = batch_results[static_cast<std::size_t>(fresh_row)];
        if (fresh_result.route == core::Route::kCloud && !fresh_result.offloaded) {
          // A degraded outcome (offload timeout / deadline expiry /
          // loss / unreachable cloud) must not be frozen in: the next
          // occurrence of this frame deserves another shot at the
          // cloud.
          continue;
        }
        cache_->insert(batch.data() + fresh_row * stride, stride, fresh_result);
      }
    }
  }

  // Settle each coalesced request's slot in the completion table,
  // flagging instances that completed past their routed deadline and
  // recording end-to-end (submit -> settle) latency — unless a cancel
  // won the race, in which case the results are dropped.
  std::size_t offset = 0;
  for (const InferenceRequest& request : requests) {
    const std::size_t count = static_cast<std::size_t>(request.images.shape().batch());
    const SteadyClock::time_point settled_at = clock_->now();
    std::int64_t late = 0;
    for (std::size_t i = offset; i < offset + count; ++i) {
      InferenceResult& r = batch_results[i];
      // Cloud instances were attributed above (an offloaded or
      // timed-out instance is never also an expiry); the on-device
      // routes get the observational late flag here.
      if (r.route != core::Route::kCloud && !r.deadline_expired &&
          settled_at > deadline_at(*request.completion, r.route)) {
        r.deadline_expired = true;
      }
      if (r.deadline_expired) ++late;
    }
    const double e2e_s =
        sim::Clock::seconds_between(request.completion->submitted_at, settled_at);
    for (std::size_t i = offset; i < offset + count; ++i) {
      batch_results[i].e2e_latency_s = e2e_s;
    }
    // Metrics are recorded inside the transition's critical section so a
    // caller woken by the settle can never read counters that miss it.
    // A lost transition means a cancel won mid-service: the inference
    // ran but the caller is gone, and the cancel already counted itself.
    request.completion->settle(
        std::vector<InferenceResult>(
            batch_results.begin() + static_cast<std::ptrdiff_t>(offset),
            batch_results.begin() + static_cast<std::ptrdiff_t>(offset + count)),
        [&] {
          for (std::size_t i = offset; i < offset + count; ++i) {
            collector_.record_completion(batch_results[i].route, e2e_s);
          }
          if (late > 0) collector_.record_deadline_expired(late);
        });
    offset += count;
  }
}

}  // namespace meanet::runtime
