#include "runtime/response_cache.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace meanet::runtime {

namespace {

bool bytes_equal(const std::vector<float>& key, const float* frame, std::int64_t count) {
  if (key.size() != static_cast<std::size_t>(count)) return false;
  return std::memcmp(key.data(), frame, static_cast<std::size_t>(count) * sizeof(float)) == 0;
}

}  // namespace

std::uint64_t ResponseCache::fnv1a(const float* frame, std::int64_t count) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(frame);
  const std::size_t n = static_cast<std::size_t>(count) * sizeof(float);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

ResponseCache::ResponseCache(std::size_t capacity, Hasher hasher)
    : capacity_(capacity), hasher_(hasher ? std::move(hasher) : Hasher(&ResponseCache::fnv1a)) {
  if (capacity_ == 0) throw std::invalid_argument("ResponseCache: capacity must be positive");
}

ResponseCache::EntryList::iterator ResponseCache::find_locked(std::uint64_t hash,
                                                              const float* frame,
                                                              std::int64_t count) {
  const auto bucket = index_.find(hash);
  if (bucket == index_.end()) return mru_.end();
  for (const EntryList::iterator it : bucket->second) {
    if (bytes_equal(it->key, frame, count)) return it;
  }
  return mru_.end();
}

std::optional<InferenceResult> ResponseCache::lookup(const float* frame, std::int64_t count) {
  const std::uint64_t hash = hasher_(frame, count);
  std::lock_guard<std::mutex> lock(mutex_);
  const EntryList::iterator it = find_locked(hash, frame, count);
  if (it == mru_.end()) {
    ++misses_;
    return std::nullopt;
  }
  mru_.splice(mru_.begin(), mru_, it);  // refresh: hit -> most recently used
  ++hits_;
  return it->result;
}

void ResponseCache::insert(const float* frame, std::int64_t count,
                           const InferenceResult& result) {
  const std::uint64_t hash = hasher_(frame, count);
  std::lock_guard<std::mutex> lock(mutex_);
  const EntryList::iterator existing = find_locked(hash, frame, count);
  if (existing != mru_.end()) {
    // Another worker cached this frame first; keep its result, refresh
    // the recency.
    mru_.splice(mru_.begin(), mru_, existing);
    return;
  }
  mru_.push_front(Entry{hash, std::vector<float>(frame, frame + count), result});
  index_[hash].push_back(mru_.begin());
  if (mru_.size() > capacity_) evict_one_locked();
}

void ResponseCache::evict_one_locked() {
  const EntryList::iterator victim = std::prev(mru_.end());
  const auto bucket = index_.find(victim->hash);
  std::vector<EntryList::iterator>& peers = bucket->second;
  peers.erase(std::remove(peers.begin(), peers.end(), victim), peers.end());
  if (peers.empty()) index_.erase(bucket);
  mru_.erase(victim);
  ++evictions_;
}

std::size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mru_.size();
}

std::int64_t ResponseCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t ResponseCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::int64_t ResponseCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

diag::Value ResponseCache::diag_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  diag::Value v = diag::Value::object();
  v.set("capacity", static_cast<std::int64_t>(capacity_));
  v.set("entries", static_cast<std::int64_t>(mru_.size()));
  v.set("hits", hits_);
  v.set("misses", misses_);
  v.set("evictions", evictions_);
  return v;
}

}  // namespace meanet::runtime
