#include "runtime/transport.h"

namespace meanet::runtime {

SimulatedLink::SimulatedLink(TransportConfig config) : config_(std::move(config)) {
  if (config_.cell) {
    cell_ = config_.cell;
  } else {
    // A plain config is a cell of one: same delay math, no contention.
    // SharedCell's constructor validates the throughput/latency fields.
    sim::SharedCellConfig private_cell;
    private_cell.uplink = config_.wifi;
    private_cell.downlink = config_.downlink;
    private_cell.base_latency_s = config_.base_latency_s;
    private_cell.jitter_s = config_.jitter_s;
    private_cell.seed = config_.seed;
    cell_ = std::make_shared<sim::SharedCell>(private_cell);
  }
  station_ = cell_->attach();
}

SimulatedLink::~SimulatedLink() { cell_->detach(station_); }

double SimulatedLink::uplink_delay_s(std::uint64_t key, std::int64_t payload_bytes) {
  return cell_->uplink_delay_s(station_, key, payload_bytes);
}

double SimulatedLink::downlink_delay_s(std::uint64_t key, std::int64_t response_bytes) {
  return cell_->downlink_delay_s(station_, key, response_bytes);
}

double SimulatedLink::delay_s(std::int64_t payload_bytes) {
  return uplink_delay_s(next_key_.fetch_add(1), payload_bytes);
}

}  // namespace meanet::runtime
