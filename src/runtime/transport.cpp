#include "runtime/transport.h"

#include <stdexcept>

namespace meanet::runtime {

SimulatedLink::SimulatedLink(TransportConfig config, std::shared_ptr<sim::Clock> clock)
    : config_(std::move(config)), clock_(sim::resolve_clock(std::move(clock))) {
  if (config_.cell) {
    // One medium, one timeline: a shared cell's waits must run on the
    // same clock as every session transferring on it, or a virtual-time
    // session would block on wall airtime (and vice versa).
    if (config_.cell->clock() != clock_) {
      throw std::invalid_argument(
          "SimulatedLink: the shared cell and the session must use the same clock "
          "(set SharedCellConfig::clock and EngineConfig::clock to one instance)");
    }
    cell_ = config_.cell;
  } else {
    // A plain config is a cell of one: same delay math, no contention.
    // SharedCell's constructor validates the throughput/latency fields.
    sim::SharedCellConfig private_cell;
    private_cell.uplink = config_.wifi;
    private_cell.downlink = config_.downlink;
    private_cell.base_latency_s = config_.base_latency_s;
    private_cell.jitter_s = config_.jitter_s;
    private_cell.seed = config_.seed;
    private_cell.clock = clock_;
    cell_ = std::make_shared<sim::SharedCell>(private_cell);
  }
  station_ = cell_->attach();
}

SimulatedLink::~SimulatedLink() { cell_->detach(station_); }

double SimulatedLink::uplink_delay_s(std::uint64_t key, std::int64_t payload_bytes) {
  return cell_->uplink_delay_s(station_, key, payload_bytes);
}

double SimulatedLink::downlink_delay_s(std::uint64_t key, std::int64_t response_bytes) {
  return cell_->downlink_delay_s(station_, key, response_bytes);
}

sim::TransferOutcome SimulatedLink::upload(std::uint64_t key, std::int64_t payload_bytes,
                                           const std::function<bool()>& cancel) {
  return cell_->uplink_transfer(station_, key, payload_bytes, cancel);
}

sim::TransferOutcome SimulatedLink::download(std::uint64_t key, std::int64_t response_bytes,
                                             const std::function<bool()>& cancel) {
  return cell_->downlink_transfer(station_, key, response_bytes, cancel);
}

void SimulatedLink::poke() { cell_->poke(); }

double SimulatedLink::delay_s(std::int64_t payload_bytes) {
  return uplink_delay_s(next_key_.fetch_add(1), payload_bytes);
}

}  // namespace meanet::runtime
