#include "runtime/transport.h"

#include <stdexcept>

namespace meanet::runtime {

SimulatedLink::SimulatedLink(TransportConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.wifi.throughput_mbps <= 0.0) {
    throw std::invalid_argument("SimulatedLink: non-positive WiFi throughput");
  }
  if (config_.base_latency_s < 0.0 || config_.jitter_s < 0.0) {
    throw std::invalid_argument("SimulatedLink: negative latency or jitter");
  }
}

double SimulatedLink::delay_s(std::int64_t payload_bytes) {
  double delay = config_.wifi.upload_time_s(payload_bytes) + config_.base_latency_s;
  if (config_.jitter_s > 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    delay += rng_.uniform(0.0f, static_cast<float>(config_.jitter_s));
  }
  return delay;
}

}  // namespace meanet::runtime
