// Bounded blocking MPMC queues between InferenceSession::submit() and
// the worker threads. Capacity bounds the memory held by pending
// requests: producers block when the queue is full (backpressure),
// consumers block when it is empty.
//
// Two variants share the contract: the FIFO BoundedQueue (completion
// callbacks and other order-preserving plumbing), and the
// PriorityBoundedQueue serving requests and offload payloads by
// scheduling key — (priority desc, deadline asc, arrival seq asc) —
// with a configurable starvation bound that ages the oldest waiting
// item forward when higher-priority traffic floods it.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/clock.h"

namespace meanet::runtime {

template <typename T>
class BoundedQueue {
 public:
  /// `clock` routes the blocking waits (null = the process WallClock,
  /// which is plain condition_variable behavior); under a VirtualClock
  /// a consumer parked here counts as a blocked actor.
  explicit BoundedQueue(std::size_t capacity, std::shared_ptr<sim::Clock> clock = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        clock_(sim::resolve_clock(std::move(clock))) {}

  /// Blocks until there is room; returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    clock_->wait(lock, not_full_, sim::Clock::TimePoint::max(),
                 [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    clock_->notify(not_empty_);
    return true;
  }

  /// Blocks until an item arrives; returns nullopt when the queue is
  /// closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    clock_->wait(lock, not_empty_, sim::Clock::TimePoint::max(),
                 [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    clock_->notify(not_full_);
    return item;
  }

  /// Non-blocking pop used to coalesce pending requests into one batch.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    clock_->notify(not_full_);
    return item;
  }

  /// Wakes all waiters; push() fails and pop() drains then returns
  /// nullopt afterwards.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    clock_->notify(not_empty_);
    clock_->notify(not_full_);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Most items ever queued at once (the SessionMetrics queue-depth
  /// high-water mark).
  std::size_t high_water_mark() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  std::shared_ptr<sim::Clock> clock_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

/// Scheduling key of one queued item. Dequeue order is priority
/// descending, then absolute deadline ascending (earliest-deadline-first
/// among equals), then arrival order — exactly the order a
/// std::stable_sort over (priority desc, deadline asc) would produce.
struct SchedKey {
  /// Higher is served sooner.
  int priority = 0;
  /// Absolute completion deadline; time_point::max() = unbounded.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// True when `a` should be dequeued before `b` (ties fall through to
/// the arrival sequence, which the queue tracks separately).
inline bool sched_before(const SchedKey& a, const SchedKey& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.deadline < b.deadline;
}

/// One dequeued item with the scheduling identity it was queued under,
/// so a consumer that popped it but could not serve it yet can requeue
/// it in its original position (same key, same arrival seq).
template <typename T>
struct Scheduled {
  T item;
  SchedKey key;
  std::uint64_t seq = 0;
  /// True when this pop was forced by the starvation bound. A consumer
  /// that requeues a promoted item hands its promotion credit back (see
  /// requeue), so coalescing cannot silently burn the aging guarantee.
  bool promoted = false;
};

/// Bounded blocking MPMC priority queue keyed by SchedKey.
///
/// Starvation bound: with `starvation_bound` N > 0, the oldest waiting
/// item is never bypassed by more than N consecutive pops — the (N+1)th
/// pop serves it regardless of priority and counts a promotion. 0
/// disables aging (pure priority order; a saturating high-priority
/// flood then starves lower priorities indefinitely).
///
/// pop() scans linearly for the best key; with the few hundred entries
/// a session's capacity admits that costs less than maintaining a heap
/// that would still need the oldest-by-seq side index.
template <typename T>
class PriorityBoundedQueue {
 public:
  /// `clock` routes the blocking waits (null = the process WallClock);
  /// see BoundedQueue.
  explicit PriorityBoundedQueue(std::size_t capacity, int starvation_bound,
                                std::shared_ptr<sim::Clock> clock = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        starvation_bound_(starvation_bound < 0 ? 0 : starvation_bound),
        clock_(sim::resolve_clock(std::move(clock))) {}

  /// Blocks until there is room; returns false if the queue was closed.
  bool push(T item, SchedKey key) {
    std::unique_lock<std::mutex> lock(mutex_);
    clock_->wait(lock, not_full_, sim::Clock::TimePoint::max(),
                 [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(Entry{std::move(item), key, next_seq_++});
    high_water_ = std::max(high_water_, items_.size());
    clock_->notify(not_empty_);
    return true;
  }

  /// Re-admits an item a consumer popped but could not serve in its
  /// current batch (wrong geometry, batch overflow). Keeps the original
  /// key and seq, so the item resumes its exact place in the dequeue
  /// order — and if the pop had been a forced starvation promotion, the
  /// promotion credit is restored (the very next pop forces it again),
  /// so a victim whose geometry never fits a forming batch still gets
  /// served as the seed of the next one instead of starving through
  /// promote-requeue cycles. Never blocks: the item held a slot moments
  /// ago, and a consumer blocking on its own queue would deadlock the
  /// session — the transient one-item-per-worker overshoot of
  /// `capacity` is the price of that guarantee. Works after close()
  /// (the item drains like any other leftover).
  void requeue(Scheduled<T> scheduled) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.push_back(
          Entry{std::move(scheduled.item), scheduled.key, scheduled.seq});
      high_water_ = std::max(high_water_, items_.size());
      if (scheduled.promoted && starvation_bound_ > 0) {
        victim_seq_ = scheduled.seq;
        consecutive_bypasses_ = starvation_bound_;
      }
    }
    clock_->notify(not_empty_);
  }

  /// Blocks until an item arrives; returns nullopt when the queue is
  /// closed and drained.
  std::optional<Scheduled<T>> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    clock_->wait(lock, not_empty_, sim::Clock::TimePoint::max(),
                 [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    return take(select_locked());
  }

  /// Non-blocking pop used to coalesce pending requests into one batch.
  std::optional<Scheduled<T>> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    return take(select_locked());
  }

  /// Wakes all waiters; push() fails and pop() drains then returns
  /// nullopt afterwards.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    clock_->notify(not_empty_);
    clock_->notify(not_full_);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Most items ever queued at once (the SessionMetrics queue-depth
  /// high-water mark).
  std::size_t high_water_mark() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  /// Pops that served the oldest waiting item because the starvation
  /// bound forced it (SessionMetrics::starvation_promotions).
  std::int64_t starvation_promotions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return promotions_;
  }

 private:
  struct Entry {
    T item;
    SchedKey key;
    std::uint64_t seq = 0;
  };

  struct Selection {
    std::size_t index = 0;
    bool promoted = false;
  };

  /// The entry the next pop should take, applying the starvation bound.
  /// Caller holds mutex_; items_ is non-empty.
  Selection select_locked() {
    std::size_t best = 0, oldest = 0;
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (sched_before(items_[i].key, items_[best].key) ||
          (!sched_before(items_[best].key, items_[i].key) &&
           items_[i].seq < items_[best].seq)) {
        best = i;
      }
      if (items_[i].seq < items_[oldest].seq) oldest = i;
    }
    if (best == oldest || starvation_bound_ <= 0) {
      consecutive_bypasses_ = 0;
      return {best, false};
    }
    // The oldest item is being bypassed. Count consecutive bypasses of
    // *this* victim; when a pop removed the previous victim the seq
    // comparison resets the run.
    if (victim_seq_ != items_[oldest].seq) {
      victim_seq_ = items_[oldest].seq;
      consecutive_bypasses_ = 0;
    }
    if (consecutive_bypasses_ >= starvation_bound_) {
      ++promotions_;
      consecutive_bypasses_ = 0;
      return {oldest, true};  // forced: the bound caps the victim's wait
    }
    ++consecutive_bypasses_;
    return {best, false};
  }

  Scheduled<T> take(Selection selection) {
    Scheduled<T> out{std::move(items_[selection.index].item), items_[selection.index].key,
                     items_[selection.index].seq, selection.promoted};
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(selection.index));
    clock_->notify(not_full_);
    return out;
  }

  const std::size_t capacity_;
  const int starvation_bound_;
  std::shared_ptr<sim::Clock> clock_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_, not_full_;
  std::vector<Entry> items_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t victim_seq_ = 0;
  int consecutive_bypasses_ = 0;
  std::int64_t promotions_ = 0;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace meanet::runtime
