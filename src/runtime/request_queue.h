// Bounded blocking MPMC queue used between InferenceSession::submit()
// and the worker threads. Capacity bounds the memory held by pending
// requests: producers block when the queue is full (backpressure),
// consumers block when it is empty.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace meanet::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until there is room; returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; returns nullopt when the queue is
  /// closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop used to coalesce pending requests into one batch.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; push() fails and pop() drains then returns
  /// nullopt afterwards.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Most items ever queued at once (the SessionMetrics queue-depth
  /// high-water mark).
  std::size_t high_water_mark() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace meanet::runtime
