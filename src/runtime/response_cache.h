// Session-level response cache with LRU eviction and byte-exact keys.
//
// The cache deduplicates repeated frames: the key is the frame's raw
// image bytes (hashed for the index, compared byte-for-byte on lookup),
// the value is the frame's fully-served InferenceResult. Eviction is
// least-recently-used — a hit refreshes the entry — which fixes the
// FIFO behavior the session shipped with (a hot frame was evicted
// purely by insertion age while cold one-off frames survived).
//
// Hash collisions are resolved exactly: two distinct frames that land
// on the same 64-bit hash live side by side in the bucket, and a lookup
// only hits the entry whose bytes match. The hash function is
// injectable so the property tests can force collisions synthetically.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "diag/provider.h"
#include "runtime/result_handle.h"

namespace meanet::runtime {

class ResponseCache : public diag::DiagnosticProvider {
 public:
  using Hasher = std::function<std::uint64_t(const float*, std::int64_t)>;

  /// `capacity` bounds the number of entries (must be positive); a null
  /// `hasher` uses FNV-1a over the frame bytes.
  explicit ResponseCache(std::size_t capacity, Hasher hasher = {});

  /// Returns the cached result of a byte-identical frame and marks the
  /// entry most-recently-used; nullopt on miss (including a hash
  /// collision whose bytes differ).
  std::optional<InferenceResult> lookup(const float* frame, std::int64_t count);

  /// Caches `result` under the frame's bytes. An existing byte-identical
  /// entry is refreshed (moved to most-recently-used) and keeps its
  /// stored result — concurrent workers race benignly. Inserting beyond
  /// capacity evicts the least-recently-used entry.
  void insert(const float* frame, std::int64_t count, const InferenceResult& result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

  /// The default hasher: FNV-1a over the frame's raw bytes.
  static std::uint64_t fnv1a(const float* frame, std::int64_t count);

  // DiagnosticProvider. The cache does NOT register itself — its owner
  // (the session) holds the ScopedRegistration, so standalone caches in
  // tests stay out of the process registry.
  void set_diag_name(std::string name) { diag_name_ = std::move(name); }
  std::string diag_name() const override { return diag_name_; }
  diag::Value diag_snapshot() const override;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<float> key;  // the frame bytes, for exact compare
    InferenceResult result;
  };
  using EntryList = std::list<Entry>;

  /// Iterator into mru_ of the byte-identical entry, or end(). Caller
  /// holds mutex_.
  EntryList::iterator find_locked(std::uint64_t hash, const float* frame, std::int64_t count);
  void evict_one_locked();

  const std::size_t capacity_;
  Hasher hasher_;
  /// Set once by the owner before registering (not locked).
  std::string diag_name_ = "response_cache";

  mutable std::mutex mutex_;
  EntryList mru_;  // front = most recently used
  // hash -> entries sharing it (collision bucket; usually size 1).
  std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace meanet::runtime
