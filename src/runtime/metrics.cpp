#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>

namespace meanet::runtime {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(1.0, std::max(0.0, p));
  // Nearest-rank: the smallest sample with at least p of the mass at or
  // below it; rank 1-based.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

void MetricsCollector::record_submitted(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.submitted_instances += instances;
}

void MetricsCollector::record_completion(core::Route route, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.completed_instances;
  auto& stats = counters_.per_route[static_cast<std::size_t>(route)];
  ++stats.count;
  samples_[static_cast<std::size_t>(route)].push_back(seconds);
}

void MetricsCollector::record_queue_wait(int priority, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  wait_samples_[priority].push_back(seconds);
}

void MetricsCollector::record_cancelled(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.cancelled_instances += instances;
}

void MetricsCollector::record_failed(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.failed_instances += instances;
}

void MetricsCollector::record_deadline_expired(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.deadline_expirations += instances;
}

void MetricsCollector::record_admission_rejected(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.admission_rejections += instances;
}

void MetricsCollector::record_offload_dispatch() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.offload_dispatches;
}

void MetricsCollector::record_offload_timeout(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.offload_timeouts += instances;
}

void MetricsCollector::record_offload_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.offload_failures;
}

void MetricsCollector::record_cache_hits(std::int64_t hits) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.cache_hits += hits;
}

SessionMetrics MetricsCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionMetrics out = counters_;
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    out.per_route[r].p50_s = percentile(samples_[r], 0.50);
    out.per_route[r].p95_s = percentile(samples_[r], 0.95);
    out.per_route[r].p99_s = percentile(samples_[r], 0.99);
  }
  out.queue_wait_by_priority.reserve(wait_samples_.size());
  for (const auto& [priority, waits] : wait_samples_) {
    PriorityWaitStats stats;
    stats.priority = priority;
    stats.requests = static_cast<std::int64_t>(waits.size());
    stats.p50_s = percentile(waits, 0.50);
    stats.p95_s = percentile(waits, 0.95);
    stats.p99_s = percentile(waits, 0.99);
    out.queue_wait_by_priority.push_back(stats);
  }
  return out;
}

}  // namespace meanet::runtime
