#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>

namespace meanet::runtime {

double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, p));
  // Nearest-rank: the smallest sample with at least p of the mass at or
  // below it; rank 1-based. The product p*n is snapped to the nearest
  // integer when it is within an ulp-scale epsilon of one, BEFORE the
  // ceil: 0.95 * 20 is 19.000000000000004 in IEEE doubles, and a bare
  // ceil turned that exact rank 19 into rank 20 — a whole-sample drift
  // on small sets (p99 of 100 samples read the max instead of the 99th).
  const double pos = clamped * static_cast<double>(sorted.size());
  const double snapped = std::nearbyint(pos);
  const double effective =
      std::abs(pos - snapped) <= 1e-9 * std::max(1.0, snapped) ? snapped : pos;
  const std::size_t rank = static_cast<std::size_t>(std::ceil(effective));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, p);
}

namespace {

// One table drives both counter_names() and to_value(): a scalar that
// exists in the struct but not here (or the reverse) cannot silently
// diverge between the documented list and the emitted tree.
struct ScalarField {
  const char* name;
  diag::Value (*get)(const SessionMetrics&);
};

const ScalarField kScalarFields[] = {
    {"submitted_instances", [](const SessionMetrics& m) { return diag::Value(m.submitted_instances); }},
    {"completed_instances", [](const SessionMetrics& m) { return diag::Value(m.completed_instances); }},
    {"cancelled_instances", [](const SessionMetrics& m) { return diag::Value(m.cancelled_instances); }},
    {"failed_instances", [](const SessionMetrics& m) { return diag::Value(m.failed_instances); }},
    {"deadline_expirations", [](const SessionMetrics& m) { return diag::Value(m.deadline_expirations); }},
    {"queue_depth_high_water", [](const SessionMetrics& m) { return diag::Value(m.queue_depth_high_water); }},
    {"admission_rejections", [](const SessionMetrics& m) { return diag::Value(m.admission_rejections); }},
    {"offload_dispatches", [](const SessionMetrics& m) { return diag::Value(m.offload_dispatches); }},
    {"offload_timeouts", [](const SessionMetrics& m) { return diag::Value(m.offload_timeouts); }},
    {"offload_failures", [](const SessionMetrics& m) { return diag::Value(m.offload_failures); }},
    {"starvation_promotions", [](const SessionMetrics& m) { return diag::Value(m.starvation_promotions); }},
    {"cell_busy_s", [](const SessionMetrics& m) { return diag::Value(m.cell_busy_s); }},
    {"cell_airtime_utilization",
     [](const SessionMetrics& m) { return diag::Value(m.cell_airtime_utilization); }},
    {"cache_hits", [](const SessionMetrics& m) { return diag::Value(m.cache_hits); }},
    {"cache_entries", [](const SessionMetrics& m) { return diag::Value(m.cache_entries); }},
    {"cache_evictions", [](const SessionMetrics& m) { return diag::Value(m.cache_evictions); }},
};

diag::Value percentile_tree(std::int64_t count, double p50, double p95, double p99) {
  diag::Value v = diag::Value::object();
  v.set("count", count);
  v.set("p50_s", p50);
  v.set("p95_s", p95);
  v.set("p99_s", p99);
  return v;
}

}  // namespace

const std::vector<const char*>& SessionMetrics::counter_names() {
  static const std::vector<const char*> names = [] {
    std::vector<const char*> out;
    for (const ScalarField& field : kScalarFields) out.push_back(field.name);
    return out;
  }();
  return names;
}

diag::Value SessionMetrics::to_value() const {
  diag::Value v = diag::Value::object();
  for (const ScalarField& field : kScalarFields) v.set(field.name, field.get(*this));
  diag::Value routes = diag::Value::object();
  for (int r = 0; r < core::kNumRoutes; ++r) {
    const RouteLatencyStats& stats = per_route[static_cast<std::size_t>(r)];
    routes.set(core::route_name(static_cast<core::Route>(r)),
               percentile_tree(stats.count, stats.p50_s, stats.p95_s, stats.p99_s));
  }
  v.set("routes", std::move(routes));
  diag::Value waits = diag::Value::array();
  for (const PriorityWaitStats& stats : queue_wait_by_priority) {
    diag::Value row = diag::Value::object();
    row.set("priority", stats.priority);
    row.set("requests", stats.requests);
    row.set("p50_s", stats.p50_s);
    row.set("p95_s", stats.p95_s);
    row.set("p99_s", stats.p99_s);
    waits.push(std::move(row));
  }
  v.set("queue_wait_by_priority", std::move(waits));
  return v;
}

void SampleReservoir::add(double value) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // Algorithm R: replace a uniformly drawn slot with probability
  // capacity / seen, keeping the held set a uniform sample.
  const std::uint64_t j = next_random() % static_cast<std::uint64_t>(seen_);
  if (j < capacity_) samples_[static_cast<std::size_t>(j)] = value;
}

std::uint64_t SampleReservoir::next_random() {
  // splitmix64: tiny, seedable, and plenty for replacement draws.
  std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void MetricsCollector::record_submitted(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.submitted_instances += instances;
}

void MetricsCollector::record_completion(core::Route route, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.completed_instances;
  auto& stats = counters_.per_route[static_cast<std::size_t>(route)];
  ++stats.count;
  samples_[static_cast<std::size_t>(route)].add(seconds);
}

void MetricsCollector::record_queue_wait(int priority, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = wait_samples_.find(priority);
  if (it == wait_samples_.end()) {
    it = wait_samples_
             .emplace(priority, SampleReservoir(SampleReservoir::kDefaultCapacity,
                                                static_cast<std::uint64_t>(priority) + 17))
             .first;
  }
  it->second.add(seconds);
}

void MetricsCollector::record_cancelled(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.cancelled_instances += instances;
}

void MetricsCollector::record_failed(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.failed_instances += instances;
}

void MetricsCollector::record_deadline_expired(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.deadline_expirations += instances;
}

void MetricsCollector::record_admission_rejected(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.admission_rejections += instances;
}

void MetricsCollector::record_offload_dispatch() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.offload_dispatches;
}

void MetricsCollector::record_offload_timeout(std::int64_t instances) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.offload_timeouts += instances;
}

void MetricsCollector::record_offload_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.offload_failures;
}

void MetricsCollector::record_cache_hits(std::int64_t hits) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.cache_hits += hits;
}

SessionMetrics MetricsCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionMetrics out = counters_;
  // One sorted copy per held set (bounded by the reservoir capacity),
  // three rank reads — the old code copied and re-sorted every set
  // once per percentile while holding the lock.
  std::vector<double> sorted;
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    sorted = samples_[r].samples();
    std::sort(sorted.begin(), sorted.end());
    out.per_route[r].p50_s = sorted_percentile(sorted, 0.50);
    out.per_route[r].p95_s = sorted_percentile(sorted, 0.95);
    out.per_route[r].p99_s = sorted_percentile(sorted, 0.99);
  }
  out.queue_wait_by_priority.reserve(wait_samples_.size());
  for (const auto& [priority, waits] : wait_samples_) {
    sorted = waits.samples();
    std::sort(sorted.begin(), sorted.end());
    PriorityWaitStats stats;
    stats.priority = priority;
    stats.requests = waits.count();
    stats.p50_s = sorted_percentile(sorted, 0.50);
    stats.p95_s = sorted_percentile(sorted, 0.95);
    stats.p99_s = sorted_percentile(sorted, 0.99);
    out.queue_wait_by_priority.push_back(stats);
  }
  return out;
}

}  // namespace meanet::runtime
