// The unified serving API for Alg. 2 (edge pass -> route -> extension
// or offload), asynchronous since PR 2, with a full request lifecycle
// since PR 3 (per-route deadlines, cancellation, completion callbacks,
// a WiFi-timed offload transport) and priority-aware scheduling since
// PR 5: requests and pending uploads are served by (priority desc,
// deadline asc, arrival asc) with a configurable starvation bound, and
// the transport can be a sim::SharedCell several sessions contend on —
// uplink and downlink both cost airtime now.
//
// An InferenceSession is built once from an EngineConfig — which model,
// which routing policy, which offload backend, how many workers — and
// then serves requests through submit()/drain() or the synchronous
// run() convenience. submit() returns a ResultHandle (future-like:
// ready() / try_get() / wait() / cancel()) backed by the session's
// completion table; drain() and run() are thin wrappers that wait a
// round of handles and collect their results.
//
//   EngineConfig cfg;
//   cfg.net = &net; cfg.dict = &dict;
//   cfg.policy_config = {.entropy_threshold = 0.6, .cloud_available = true};
//   cfg.offload_mode = OffloadMode::kRawImage; cfg.cloud = &cloud;
//   cfg.route_deadline_s[size_t(core::Route::kCloud)] = 0.050;
//   cfg.transport = TransportConfig{};  // WiFi-timed uploads
//   InferenceSession session(cfg);
//   SubmitOptions opts;
//   opts.on_complete = [](const ResultHandle& h) { consume(h.wait()); };
//   ResultHandle frame = session.submit(camera_frame, opts);
//   ... do other work, or frame.cancel() to abandon it ...
//
// Concurrency: all workers serve on the ONE net the config names —
// eval-mode forwards are cache-free and const-safe (see nn/layer.h), so
// a shared net is data-race free and the old weight-synced replica
// machinery is gone (EngineConfig::replicas is a deprecated no-op).
// Each worker owns an EdgeInferenceEngine for its routing-signal
// scratch, and the per-thread ops workspace keeps its im2col / GEMM
// packing buffers alive across submits. Offloading is off the worker
// hot path: workers hand cloud
// payloads to a dedicated dispatcher thread (the single shared cloud
// link) and wait at most offload_timeout_s — or the tightest remaining
// deadline among the payload's instances, whichever is sooner — after
// which the affected instances keep their edge predictions exactly like
// the NullBackend path. Per-instance results are independent of batch
// composition, so a threaded session reproduces the single-threaded
// results exactly when offloads complete (the default infinite timeout)
// or miss the deadline decisively (link RTT far above the timeout, or
// no backend). A finite timeout or deadline near the link's actual
// round-trip is inherently racy: whether a borderline offload beats it
// can depend on dispatcher backlog and therefore on worker count.
//
// Completion callbacks run on a dedicated callback thread, never on a
// serving worker — a slow callback backpressures the callback queue,
// not the inference hot path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/edge_inference.h"
#include "diag/provider.h"
#include "diag/registry.h"
#include "runtime/metrics.h"
#include "runtime/offload_backend.h"
#include "runtime/request_queue.h"
#include "runtime/response_cache.h"
#include "runtime/result_handle.h"
#include "runtime/transport.h"
#include "sim/edge_node.h"

namespace meanet::runtime {

/// Full serving configuration; everything is selected here at runtime.
struct EngineConfig {
  // ----- Model (required) -----
  core::MEANet* net = nullptr;
  const data::ClassDict* dict = nullptr;

  // ----- Time source -----
  /// The clock every timed path of the session runs on — submit
  /// timestamps, deadlines, queue waits, offload/ticket timeouts, the
  /// simulated transfer occupancy, e2e latency metrics. Null (the
  /// default) = the process WallClock: behavior is exactly the
  /// pre-seam wall-clock serving stack. Inject a sim::VirtualClock
  /// (sim/event_loop.h) to replay hours of traffic in wall
  /// milliseconds, bit-identically at any worker count; a shared
  /// transport cell must then be on the same clock instance
  /// (SharedCellConfig::clock), and the thread driving submissions
  /// should register via sim::ActorGuard so its submit timestamps are
  /// deterministic too.
  std::shared_ptr<sim::Clock> clock;

  // ----- Routing -----
  /// Custom policy; when null, an EntropyThresholdPolicy is built from
  /// `policy_config` (the paper's rule).
  std::shared_ptr<const core::RoutingPolicy> policy;
  core::PolicyConfig policy_config;

  // ----- Offload -----
  /// Custom backend; when null, one is built from `offload_mode` and the
  /// matching node pointer (kNone -> NullBackend).
  std::shared_ptr<OffloadBackend> backend;
  OffloadMode offload_mode = OffloadMode::kNone;
  sim::CloudNode* cloud = nullptr;
  sim::FeatureCloudNode* feature_cloud = nullptr;
  /// How long a worker waits for the offload dispatcher's answer before
  /// the cloud-routed instances fall back to their edge predictions
  /// (the NullBackend behavior). Infinity = wait for the backend;
  /// <= 0 = never wait (fallback immediately, answers are discarded).
  /// Measured from dispatch — the per-route deadlines below are
  /// measured from submit() and bound the same wait from the other end.
  double offload_timeout_s = std::numeric_limits<double>::infinity();
  /// Wire mode (offload_mode = OffloadMode::kWire): Unix-domain socket
  /// path of the meanet_cloudd to dial. The session builds a
  /// WireBackend over it — raw-image payloads framed per wire/frame.h;
  /// a wire failure falls back to edge predictions exactly like an
  /// unreachable in-process cloud. Ignored in the other modes.
  std::string wire_socket_path;
  /// Wire mode: bound on the initial connect (covers a daemon still
  /// starting up) and on waiting for each response frame.
  double wire_connect_timeout_s = 5.0;
  double wire_response_timeout_s = 30.0;
  /// Simulated link the dispatcher applies to every dispatched payload:
  /// upload time derived from the WiFi model and the payload's byte
  /// size, plus base RTT and seeded jitter (see runtime/transport.h).
  /// This replaces a fixed injected latency as the transport model;
  /// nullopt = ideal instant link.
  std::optional<TransportConfig> transport;

  // ----- Deadlines -----
  // ----- Scheduling -----
  /// Scheduling priority per core::Route (higher = served sooner),
  /// the session-level default SubmitOptions::priority overrides. A
  /// request's route is only decided by the edge pass, so at submit
  /// time it is queued at the *best* route priority it could still land
  /// on (mirroring how admission uses the loosest route deadline); once
  /// an instance is known to be cloud-routed, its pending upload is
  /// ordered by route_priority[kCloud]. The queue key is
  /// (priority desc, deadline asc, arrival asc) — see
  /// runtime/request_queue.h.
  std::array<int, core::kNumRoutes> route_priority{0, 0, 0};
  /// Starvation/aging bound of the priority queues: the oldest waiting
  /// request is never bypassed by more than this many consecutive
  /// dequeues — the next one serves it regardless of priority and
  /// counts in SessionMetrics::starvation_promotions. 0 disables aging
  /// (a saturating high-priority flood then starves lower priorities
  /// indefinitely).
  int starvation_bound = 64;

  /// Per-route completion deadlines in seconds measured from submit(),
  /// indexed by core::Route; infinity (the default) disables. The
  /// deadline of the route an instance lands on bounds its end-to-end
  /// completion: a cloud-routed instance whose deadline passes while
  /// its request sits in the queue or its offload is in flight is
  /// completed with its edge prediction (NullBackend parity), flagged
  /// InferenceResult::deadline_expired, and counted in
  /// SessionMetrics::deadline_expirations — distinct from
  /// offload_timeouts. An instance whose deadline expires before its
  /// payload is built never touches the backend. Deadlines on the
  /// on-device routes are observational (nothing faster than the edge
  /// answer exists): a late instance is only flagged and counted.
  std::array<double, core::kNumRoutes> route_deadline_s{
      std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity()};
  /// Convenience: one deadline for every route.
  void set_deadline_s(double seconds) { route_deadline_s.fill(seconds); }

  // ----- Edge compute precision -----
  /// Serve the edge model through the int8 quantized inference path
  /// (tensor/qgemm.h): eval conv forwards quantize their BN-folded
  /// weights per output channel and their im2col activations
  /// per-tensor, and run the integer GEMM with a folded-scale float
  /// epilogue. Typically an integer-factor latency win on VNNI
  /// hardware for a small accuracy delta (the parity suite bounds it;
  /// bench/ablation_quantization measures the accuracy side). The
  /// flag is applied per worker thread, so sessions with different
  /// settings can share one process and one net.
  bool quantized_inference = false;

  // ----- Batching -----
  /// Max instances coalesced into one edge forward pass.
  int batch_size = 64;

  /// Byte budget of the whole-batch im2col column tile the batched conv
  /// path builds per layer (ops::batched_columns_budget). 0 keeps the
  /// process default (64 MiB, or MEANET_BATCH_COLUMNS_MB); a non-zero
  /// value is applied process-wide at session construction. Batches
  /// whose column matrix would exceed it run in per-image chunks that
  /// fit — bounding workspace growth without changing results.
  std::size_t batched_columns_budget_bytes = 0;
  /// Worker threads, all serving on the one shared `net` (eval-mode
  /// forwards are cache-free, so no per-worker copy is needed).
  int worker_threads = 1;
  /// Bound on queued requests (backpressure for submit()) and on
  /// pending completion callbacks.
  int queue_capacity = 256;
  /// DEPRECATED no-op, kept for source compatibility: workers share the
  /// primary net since eval forwards became cache-free; any nets listed
  /// here are ignored (and no longer weight-synced).
  std::vector<core::MEANet*> replicas;

  // ----- Admission -----
  /// Deadline-aware queue admission. When enabled and the estimated
  /// queue wait alone already exceeds every finite route deadline a
  /// request could land on (or its per-submit override), submit()
  /// throws AdmissionRejected instead of queueing work that can only
  /// come back expired; SessionMetrics::admission_rejections counts
  /// the shed instances. The wait estimate is schedule-aware: only
  /// instances queued at the request's priority or above count as
  /// ahead, so a low-priority backlog never sheds the high-priority
  /// traffic the scheduler would serve first. Only streaming submit() traffic is gated —
  /// run(), the bulk-eval API, always admits its own chunks. Off by
  /// default: with admission off, a doomed request is still served and
  /// flagged deadline_expired (the PR 3 deadline contract).
  bool admission_control = false;
  /// Seed for the admission estimate of per-instance service time, in
  /// seconds. The session learns an EWMA from observed batches; until
  /// the first measurement this seed is the estimate, and 0 (the
  /// default) disables rejection until something has been measured.
  double admission_service_estimate_s = 0.0;

  // ----- Response cache -----
  /// Entries of the session-level response cache (LRU over the frame's
  /// image bytes -> InferenceResult), deduplicating repeated frames.
  /// 0 disables it. Hits are served without re-running the edge pass or
  /// the offload, charge zero compute/upload cost, refresh the entry's
  /// recency, and surface in SessionMetrics::cache_hits. Keys are
  /// compared byte-exactly on hash collision. Only fully-served results
  /// are cached: a cloud-routed instance that fell back to its edge
  /// prediction (timeout / deadline / loss / unreachable cloud) is not
  /// frozen in, so the next occurrence of the frame gets another shot
  /// at the cloud.
  int response_cache_capacity = 0;

  // ----- Cost model -----
  /// Prices each instance's compute and upload; default costs are all
  /// zero. If upload_bytes_per_instance is 0 it is derived from the
  /// backend's payload_bytes() on first use.
  sim::EdgeNodeCosts costs;
};

/// Per-submit request options.
struct SubmitOptions {
  /// Overrides the session's per-route deadlines for this request (one
  /// bound for whatever route its instances land on), in seconds from
  /// submit(). NaN (the default) = use EngineConfig::route_deadline_s.
  double deadline_s = std::numeric_limits<double>::quiet_NaN();
  /// Scheduling priority of this request (higher = served sooner),
  /// overriding EngineConfig::route_priority. Unset (the default) = the
  /// best route priority the request could land on. Requests of equal
  /// priority are served earliest-deadline-first, then in arrival
  /// order; the starvation bound keeps low priorities from waiting
  /// forever under a high-priority flood.
  std::optional<int> priority;
  /// Invoked exactly once when the request settles — completed, failed,
  /// or cancelled — with a handle that is already ready(). Runs on the
  /// session's completion-callback thread, never on a serving worker.
  std::function<void(const ResultHandle&)> on_complete;
};

/// One unit of work: `images` holds 1..N instances ([C,H,W] or
/// [B,C,H,W]); instance i gets result id `id + i`. `completion` is the
/// request's slot in the session completion table.
struct InferenceRequest {
  std::int64_t id = 0;
  Tensor images;
  std::shared_ptr<detail::RequestState> completion;
};

namespace detail {

/// Dedicated executor for completion callbacks: posted closures run on
/// its single thread in post order. Posting after shutdown runs the
/// closure inline (only reachable from a caller's own thread).
class CallbackRunner {
 public:
  /// `clock` routes the queue's blocking waits and registers the
  /// callback thread as a clock actor (see sim::ActorGuard) so a
  /// VirtualClock never advances past a callback still being drained.
  explicit CallbackRunner(std::size_t capacity, std::shared_ptr<sim::Clock> clock = nullptr);
  ~CallbackRunner();

  void post(std::function<void()> fn);
  /// Drains pending callbacks and joins the thread; idempotent.
  void shutdown();

 private:
  std::shared_ptr<sim::Clock> clock_;
  BoundedQueue<std::function<void()>> queue_;
  std::thread thread_;
};

}  // namespace detail

/// Route occupancy over a result set.
core::RouteCounts count_routes(const std::vector<InferenceResult>& results);

/// Thrown by submit() when deadline-aware admission rejects a request:
/// the estimated queue wait alone already exceeds every finite route
/// deadline, so the request could only come back expired. Catch it to
/// shed load (drop the frame, try a fallback) without tearing down the
/// stream.
class AdmissionRejected : public std::runtime_error {
 public:
  explicit AdmissionRejected(const std::string& what) : std::runtime_error(what) {}
};

class InferenceSession : public diag::DiagnosticProvider {
 public:
  explicit InferenceSession(EngineConfig config);
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Enqueues 1..N instances; blocks while the queue is full. The
  /// returned handle completes when the request's results are settled;
  /// handle.id() is the result id of the first instance.
  ResultHandle submit(Tensor images);

  /// submit() with a per-request deadline override and/or a completion
  /// callback (see SubmitOptions).
  ResultHandle submit(Tensor images, SubmitOptions options);

  /// Waits for every handle submit() issued since the last drain()/run()
  /// round, then returns all their results sorted by id; cancelled
  /// requests contribute nothing. Reading a handle first is fine
  /// (handle reads are non-destructive); drain() is what retires the
  /// round — though requests already settled AND read through their
  /// handle may have been pruned from the round by a later submit()
  /// (see ResultHandle::wait), so handle-consuming streamers should not
  /// double-count drain() output. If a worker failed, throws
  /// std::runtime_error with the first error; results of requests that
  /// completed are kept and returned by the next drain() call, so the
  /// caller can tell which instances survived. Ids are always the
  /// session-global ids of the handles — match survivors against
  /// handle.id(), not against dataset indices (only run() rebases).
  std::vector<InferenceResult> drain();

  /// Synchronous convenience: submits the whole dataset in batch_size
  /// chunks and waits for exactly those requests (concurrent submit()
  /// traffic from other threads is left untouched for its own handles /
  /// drain()). Result ids are rebased to dataset indices, so result i
  /// corresponds to dataset instance i on every call. If no round is in
  /// flight, stale survivors of an earlier failed round are discarded
  /// first.
  std::vector<InferenceResult> run(const data::Dataset& dataset);

  /// Point-in-time serving counters: queue depth high-water mark,
  /// per-route counts and end-to-end latency percentiles, offload
  /// timeouts, deadline expirations, cancellations, cache hits and
  /// evictions. Cheap enough to poll between rounds.
  SessionMetrics metrics() const;

  const OffloadBackend& backend() const { return *backend_; }
  const core::RoutingPolicy& routing() const { return *routing_; }
  /// Workers actually serving (worker_threads clamped to the replicas).
  int worker_count() const { return static_cast<int>(workers_.size()); }

  // DiagnosticProvider: sessions self-register as "session/N" (N
  // counts up per process in construction order); the snapshot wraps
  // metrics().to_value() with the session's shape. A configured
  // response cache is registered alongside as
  // "response_cache/session/N".
  std::string diag_name() const override { return diag_name_; }
  diag::Value diag_snapshot() const override;

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// Completion slip for one in-flight offload dispatch. The worker
  /// waits on it with a timeout; the dispatcher settles it. Whoever
  /// loses the race simply drops its side — the shared_ptr keeps the
  /// slip alive for the late party. A worker that gives up marks the
  /// slip abandoned, which also cuts the dispatcher's simulated upload
  /// short (the sender stops transmitting at its deadline).
  struct OffloadTicket {
    std::mutex mutex;
    std::condition_variable answered;
    bool done = false;       // guarded by mutex
    bool abandoned = false;  // guarded by mutex; the waiter gave up
    bool failed = false;     // backend threw or answered the wrong shape
    std::vector<int> predictions;
    SteadyClock::time_point answered_at{};
    // Simulated transfer delays the dispatcher applied (0 without a
    // transport); guarded by mutex, written before done.
    double upload_s = 0.0;
    double downlink_s = 0.0;
  };
  struct OffloadJob {
    OffloadPayload payload;
    std::size_t expected = 0;       // instances in the payload
    std::int64_t payload_bytes = 0;  // drives the simulated upload time
    /// Result id of the payload's first instance: the transfer key the
    /// link's jitter is hashed from, so a payload's delay does not
    /// depend on dispatch interleaving.
    std::int64_t first_id = 0;
    std::shared_ptr<OffloadTicket> ticket;
  };
  /// What came back from one dispatch: predictions (empty = none) with
  /// the arrival timestamp, a failure marker, or gave_up when the wait
  /// bound expired before any answer (that — and only that — is what
  /// timeout/deadline accounting attributes; an empty-but-prompt reply
  /// is a drop, e.g. a lossy link or NullBackend).
  struct OffloadAnswer {
    std::vector<int> predictions;
    SteadyClock::time_point answered_at{};
    bool failed = false;
    bool gave_up = false;
    // Simulated transfer delays of the answering dispatch (see
    // OffloadTicket); meaningful only when predictions is non-empty.
    double upload_s = 0.0;
    double downlink_s = 0.0;
  };

  ResultHandle enqueue(Tensor images, SubmitOptions options, bool track_in_round);
  /// Deadline-aware admission: throws AdmissionRejected when the
  /// estimated queue wait for `count` more instances already exceeds
  /// `deadline_override_s` (or, when NaN, every finite configured route
  /// deadline). The wait estimate is priority-aware: only instances
  /// queued at `priority` or above count as "ahead" — the scheduler
  /// would serve this request before the rest, so a low-priority
  /// backlog must not shed the high-priority traffic it cannot delay.
  /// (Aging can let a bounded number of lower-priority requests go
  /// first; the estimate ignores that second-order effect.)
  void check_admission(int count, double deadline_override_s, int priority);
  /// Current EWMA of per-instance service time (0 = nothing known).
  double service_estimate_s() const;
  /// Folds one measured batch (rows instances in `seconds`) into the
  /// service-time EWMA.
  void observe_service(std::int64_t rows, double seconds);
  void worker_loop(int worker_index);
  void offload_loop();
  void process(core::EdgeInferenceEngine& engine, const std::vector<InferenceRequest>& requests);
  /// Ships a payload to the dispatcher and waits up to `wait_bound_s`
  /// (the offload timeout and the tightest payload deadline already
  /// folded in). `key` orders the pending upload against the other
  /// dispatch-queue entries; `first_id` keys its simulated transfer
  /// delays. An answerless return = unavailable / timed out /
  /// abandoned: the caller keeps edge predictions for all `expected`
  /// instances and attributes the cause per instance.
  OffloadAnswer offload(OffloadPayload payload, std::size_t expected,
                        std::int64_t payload_bytes, std::int64_t first_id, SchedKey key,
                        double wait_bound_s);
  /// The scheduling key a request is queued under: its resolved
  /// priority, and the earliest deadline it could face on any route.
  SchedKey request_key(const detail::RequestState& state) const;
  /// The request's deadline for `route`, as an absolute time point
  /// (time_point::max() when unbounded).
  SteadyClock::time_point deadline_at(const detail::RequestState& state,
                                      core::Route route) const;
  /// Appends a handle's results to `out`; records the first error
  /// instead of throwing; skips cancelled requests.
  static void collect(const ResultHandle& handle, std::vector<InferenceResult>& out,
                      std::string& first_error);

  // Serving state derived from the EngineConfig at construction; the
  // config itself is not kept (its policy/backend/replica fields would
  // otherwise be a stale second source of truth).
  int batch_size_;
  double offload_timeout_s_;
  std::array<double, core::kNumRoutes> route_deadline_s_;
  std::array<int, core::kNumRoutes> route_priority_;
  /// Best route priority a not-yet-routed request could land on (the
  /// default queue priority when SubmitOptions::priority is unset).
  int default_priority_;
  /// Loosest finite route deadline (infinity when every route is
  /// unbounded): the admission bar a request with no override must
  /// clear. Derived once at construction.
  double admission_deadline_s_;
  bool admission_control_ = false;
  /// Workers install this on their thread (ops::QuantizedScope) before
  /// serving — see EngineConfig::quantized_inference.
  bool quantized_inference_ = false;

  // Deadline-aware admission state: instances sitting in the queue (by
  // scheduling priority, so the wait estimate only counts traffic the
  // scheduler would actually serve first) and the learned per-instance
  // service time.
  mutable std::mutex admission_mutex_;
  std::map<int, std::int64_t> queued_by_priority_;  // guarded by admission_mutex_
  /// Adds/removes `count` instances at `priority` from the queued-ahead
  /// book-keeping (negative count removes).
  void track_queued(int priority, std::int64_t count);
  /// Instances currently queued at `priority` or above.
  std::int64_t queued_at_or_above(int priority) const;
  mutable std::mutex service_mutex_;
  double service_estimate_s_ = 0.0;  // guarded by service_mutex_
  sim::EdgeNodeCosts costs_;
  std::shared_ptr<const core::RoutingPolicy> routing_;
  std::shared_ptr<OffloadBackend> backend_;
  std::vector<std::unique_ptr<core::EdgeInferenceEngine>> engines_;  // one per worker

  /// The session's time source (EngineConfig::clock resolved; the
  /// process WallClock by default). Declared before the queues, link
  /// and callback runner — they capture it at construction.
  std::shared_ptr<sim::Clock> clock_;

  PriorityBoundedQueue<InferenceRequest> queue_;
  std::vector<std::thread> workers_;

  // Startup latch: the constructor blocks until every serving thread
  // has registered as a clock actor, so a VirtualClock can never
  // advance through the OS-scheduling-dependent window before a thread
  // starts (virtual timelines must not depend on wall thread-start
  // latency).
  std::mutex start_mutex_;
  std::condition_variable start_cv_;
  int started_threads_ = 0;  // guarded by start_mutex_
  /// Called by each serving thread right after actor registration.
  void mark_started();

  // The offload dispatcher: the single shared cloud link, fed off the
  // worker hot path, ordered by the same (priority, deadline, arrival)
  // key as the worker queue. `link_` simulates the WiFi transfers when
  // configured.
  PriorityBoundedQueue<OffloadJob> offload_queue_;
  std::unique_ptr<SimulatedLink> link_;
  std::thread offload_worker_;

  // Completion callbacks run here, never on a worker.
  std::shared_ptr<detail::CallbackRunner> callbacks_;

  std::atomic<std::int64_t> next_id_{0};

  MetricsCollector collector_;

  // Response cache (LRU, byte-exact keys); null when disabled.
  std::unique_ptr<ResponseCache> cache_;

  // The current round's completion table: handles issued by submit()
  // and not yet retired by drain(), plus survivors of a failed round.
  // Settled-and-consumed handles are pruned on submit (amortized by the
  // doubling threshold) so handle-only streamers stay bounded.
  std::mutex round_mutex_;
  std::vector<ResultHandle> round_;
  std::size_t round_prune_threshold_ = 64;  // guarded by round_mutex_
  std::vector<InferenceResult> survivors_;

  // Diagnostics — LAST members, so they are torn down FIRST: an
  // in-flight registry snapshot blocks the unregister, and only then
  // does the rest of the session destruct. During the destructor BODY
  // (joining workers) the session is still snapshot-safe: metrics()
  // only reads members that outlive the body.
  std::string diag_name_;
  diag::ScopedRegistration cache_registration_;
  diag::ScopedRegistration diag_registration_;
};

}  // namespace meanet::runtime
