// The unified serving API for Alg. 2 (edge pass -> route -> extension
// or offload), asynchronous since PR 2.
//
// An InferenceSession is built once from an EngineConfig — which model,
// which routing policy, which offload backend, how many workers — and
// then serves requests through submit()/drain() or the synchronous
// run() convenience. submit() returns a ResultHandle (future-like:
// ready() / try_get() / wait()) backed by the session's completion
// table; drain() and run() are thin wrappers that wait a round of
// handles and collect their results.
//
//   EngineConfig cfg;
//   cfg.net = &net; cfg.dict = &dict;
//   cfg.policy_config = {.entropy_threshold = 0.6, .cloud_available = true};
//   cfg.offload_mode = OffloadMode::kRawImage; cfg.cloud = &cloud;
//   InferenceSession session(cfg);
//   ResultHandle frame = session.submit(camera_frame);
//   ... do other work ...
//   for (const InferenceResult& r : frame.wait()) consume(r);
//
// Concurrency: worker i > 0 serves on replicas[i-1] (weight-synced from
// the primary at construction, because eval-mode forwards mutate layer
// caches). Offloading is off the worker hot path: workers hand cloud
// payloads to a dedicated dispatcher thread (the single shared cloud
// link) and wait at most offload_timeout_s for the answer, after which
// the affected instances keep their edge predictions exactly like the
// NullBackend path. Per-instance results are independent of batch
// composition, so a threaded session reproduces the single-threaded
// results exactly when offloads complete (the default infinite timeout)
// or miss the deadline decisively (link RTT far above the timeout, or
// no backend). A finite timeout near the link's actual round-trip is
// inherently racy: whether a borderline offload beats it can depend on
// dispatcher backlog and therefore on worker count.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/edge_inference.h"
#include "runtime/metrics.h"
#include "runtime/offload_backend.h"
#include "runtime/request_queue.h"
#include "runtime/result_handle.h"
#include "sim/edge_node.h"

namespace meanet::runtime {

/// Full serving configuration; everything is selected here at runtime.
struct EngineConfig {
  // ----- Model (required) -----
  core::MEANet* net = nullptr;
  const data::ClassDict* dict = nullptr;

  // ----- Routing -----
  /// Custom policy; when null, an EntropyThresholdPolicy is built from
  /// `policy_config` (the paper's rule).
  std::shared_ptr<const core::RoutingPolicy> policy;
  core::PolicyConfig policy_config;

  // ----- Offload -----
  /// Custom backend; when null, one is built from `offload_mode` and the
  /// matching node pointer (kNone -> NullBackend).
  std::shared_ptr<OffloadBackend> backend;
  OffloadMode offload_mode = OffloadMode::kNone;
  sim::CloudNode* cloud = nullptr;
  sim::FeatureCloudNode* feature_cloud = nullptr;
  /// How long a worker waits for the offload dispatcher's answer before
  /// the cloud-routed instances fall back to their edge predictions
  /// (the NullBackend behavior). Infinity = wait for the backend;
  /// <= 0 = never wait (fallback immediately, answers are discarded).
  double offload_timeout_s = std::numeric_limits<double>::infinity();

  // ----- Batching -----
  /// Max instances coalesced into one edge forward pass.
  int batch_size = 64;
  /// Worker threads; threads beyond 1 + replicas.size() are clamped
  /// (each extra worker needs its own architecturally identical net).
  int worker_threads = 1;
  /// Bound on queued requests (backpressure for submit()).
  int queue_capacity = 256;
  /// Extra nets for workers > 1; weight-synced from `net` at session
  /// construction.
  std::vector<core::MEANet*> replicas;

  // ----- Response cache -----
  /// Entries of the session-level response cache (hash of image bytes
  /// -> InferenceResult), deduplicating repeated frames. 0 disables it.
  /// Hits are served without re-running the edge pass or the offload,
  /// charge zero compute/upload cost, and surface in
  /// SessionMetrics::cache_hits. Only fully-served results are cached:
  /// a cloud-routed instance that fell back to its edge prediction
  /// (timeout / loss / unreachable cloud) is not frozen in, so the next
  /// occurrence of the frame gets another shot at the cloud.
  int response_cache_capacity = 0;

  // ----- Cost model -----
  /// Prices each instance's compute and upload; default costs are all
  /// zero. If upload_bytes_per_instance is 0 it is derived from the
  /// backend's payload_bytes() on first use.
  sim::EdgeNodeCosts costs;
};

/// One unit of work: `images` holds 1..N instances ([C,H,W] or
/// [B,C,H,W]); instance i gets result id `id + i`. `completion` is the
/// request's slot in the session completion table.
struct InferenceRequest {
  std::int64_t id = 0;
  Tensor images;
  std::shared_ptr<detail::RequestState> completion;
};

/// Route occupancy over a result set.
core::RouteCounts count_routes(const std::vector<InferenceResult>& results);

class InferenceSession {
 public:
  explicit InferenceSession(EngineConfig config);
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Enqueues 1..N instances; blocks while the queue is full. The
  /// returned handle completes when the request's results are settled;
  /// handle.id() is the result id of the first instance.
  ResultHandle submit(Tensor images);

  /// Waits for every handle submit() issued since the last drain()/run()
  /// round, then returns all their results sorted by id. Reading a
  /// handle first is fine (handle reads are non-destructive); drain()
  /// is what retires the round — though requests already settled AND
  /// read through their handle may have been pruned from the round by a
  /// later submit() (see ResultHandle::wait), so handle-consuming
  /// streamers should not double-count drain() output. If a worker
  /// failed, throws
  /// std::runtime_error with the first error; results of requests that
  /// completed are kept and returned by the next drain() call, so the
  /// caller can tell which instances survived. Ids are always the
  /// session-global ids of the handles — match survivors against
  /// handle.id(), not against dataset indices (only run() rebases).
  std::vector<InferenceResult> drain();

  /// Synchronous convenience: submits the whole dataset in batch_size
  /// chunks and waits for exactly those requests (concurrent submit()
  /// traffic from other threads is left untouched for its own handles /
  /// drain()). Result ids are rebased to dataset indices, so result i
  /// corresponds to dataset instance i on every call. If no round is in
  /// flight, stale survivors of an earlier failed round are discarded
  /// first.
  std::vector<InferenceResult> run(const data::Dataset& dataset);

  /// Point-in-time serving counters: queue depth high-water mark,
  /// per-route counts and latency percentiles, offload timeouts, cache
  /// hits. Cheap enough to poll between rounds.
  SessionMetrics metrics() const;

  const OffloadBackend& backend() const { return *backend_; }
  const core::RoutingPolicy& routing() const { return *routing_; }
  /// Workers actually serving (worker_threads clamped to the replicas).
  int worker_count() const { return static_cast<int>(workers_.size()); }

 private:
  /// Completion slip for one in-flight offload dispatch. The worker
  /// waits on it with a timeout; the dispatcher settles it. Whoever
  /// loses the race simply drops its side — the shared_ptr keeps the
  /// slip alive for the late party.
  struct OffloadTicket {
    std::mutex mutex;
    std::condition_variable answered;
    bool done = false;       // guarded by mutex
    bool failed = false;     // backend threw or answered the wrong shape
    std::vector<int> predictions;
  };
  struct OffloadJob {
    OffloadPayload payload;
    std::size_t expected = 0;  // instances in the payload
    std::shared_ptr<OffloadTicket> ticket;
  };

  ResultHandle enqueue(Tensor images, bool track_in_round);
  void worker_loop(int worker_index);
  void offload_loop();
  void process(core::EdgeInferenceEngine& engine, const std::vector<InferenceRequest>& requests);
  /// Ships a payload to the dispatcher and waits up to the offload
  /// timeout. Empty result = unavailable / timed out: the caller keeps
  /// edge predictions for all `expected` instances.
  std::vector<int> offload(OffloadPayload payload, std::size_t expected);
  /// Appends a handle's results to `out`; records the first error
  /// instead of throwing.
  static void collect(const ResultHandle& handle, std::vector<InferenceResult>& out,
                      std::string& first_error);

  // Serving state derived from the EngineConfig at construction; the
  // config itself is not kept (its policy/backend/replica fields would
  // otherwise be a stale second source of truth).
  int batch_size_;
  double offload_timeout_s_;
  sim::EdgeNodeCosts costs_;
  std::shared_ptr<const core::RoutingPolicy> routing_;
  std::shared_ptr<OffloadBackend> backend_;
  std::vector<std::unique_ptr<core::EdgeInferenceEngine>> engines_;  // one per worker

  BoundedQueue<InferenceRequest> queue_;
  std::vector<std::thread> workers_;

  // The offload dispatcher: the single shared cloud link, fed off the
  // worker hot path.
  BoundedQueue<OffloadJob> offload_queue_;
  std::thread offload_worker_;

  std::atomic<std::int64_t> next_id_{0};

  MetricsCollector collector_;

  // Response cache: hash of an instance's image bytes -> its settled
  // result (id/cached fields rewritten per hit). FIFO-evicted at
  // cache_capacity_.
  std::size_t cache_capacity_;
  mutable std::mutex cache_mutex_;
  std::unordered_map<std::uint64_t, InferenceResult> cache_;
  std::deque<std::uint64_t> cache_order_;

  // The current round's completion table: handles issued by submit()
  // and not yet retired by drain(), plus survivors of a failed round.
  // Settled-and-consumed handles are pruned on submit (amortized by the
  // doubling threshold) so handle-only streamers stay bounded.
  std::mutex round_mutex_;
  std::vector<ResultHandle> round_;
  std::size_t round_prune_threshold_ = 64;  // guarded by round_mutex_
  std::vector<InferenceResult> survivors_;
};

}  // namespace meanet::runtime
