// The unified serving API for Alg. 2 (edge pass -> route -> extension
// or offload).
//
// An InferenceSession is built once from an EngineConfig — which model,
// which routing policy, which offload backend, how many workers — and
// then serves InferenceRequest batches through submit()/drain() or the
// synchronous run() convenience. Everything the seed scattered across
// core::EdgeInferenceEngine, sim::DistributedSystem, sim::CloudNode and
// sim::FeatureCloudNode call sites goes through this one seam:
//
//   EngineConfig cfg;
//   cfg.net = &net; cfg.dict = &dict;
//   cfg.policy_config = {.entropy_threshold = 0.6, .cloud_available = true};
//   cfg.offload_mode = OffloadMode::kRawImage; cfg.cloud = &cloud;
//   InferenceSession session(cfg);
//   auto results = session.run(test_set);
//
// Concurrency: worker i > 0 serves on replicas[i-1] (weight-synced from
// the primary at construction, because eval-mode forwards mutate layer
// caches); the offload backend models a single shared cloud link and is
// serialized. Per-instance results are independent of batch composition,
// so a threaded session reproduces the single-threaded results exactly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/edge_inference.h"
#include "runtime/offload_backend.h"
#include "runtime/request_queue.h"
#include "sim/edge_node.h"

namespace meanet::runtime {

/// Full serving configuration; everything is selected here at runtime.
struct EngineConfig {
  // ----- Model (required) -----
  core::MEANet* net = nullptr;
  const data::ClassDict* dict = nullptr;

  // ----- Routing -----
  /// Custom policy; when null, an EntropyThresholdPolicy is built from
  /// `policy_config` (the paper's rule).
  std::shared_ptr<const core::RoutingPolicy> policy;
  core::PolicyConfig policy_config;

  // ----- Offload -----
  /// Custom backend; when null, one is built from `offload_mode` and the
  /// matching node pointer (kNone -> NullBackend).
  std::shared_ptr<OffloadBackend> backend;
  OffloadMode offload_mode = OffloadMode::kNone;
  sim::CloudNode* cloud = nullptr;
  sim::FeatureCloudNode* feature_cloud = nullptr;

  // ----- Batching -----
  /// Max instances coalesced into one edge forward pass.
  int batch_size = 64;
  /// Worker threads; threads beyond 1 + replicas.size() are clamped
  /// (each extra worker needs its own architecturally identical net).
  int worker_threads = 1;
  /// Bound on queued requests (backpressure for submit()).
  int queue_capacity = 256;
  /// Extra nets for workers > 1; weight-synced from `net` at session
  /// construction.
  std::vector<core::MEANet*> replicas;

  // ----- Cost model -----
  /// Prices each instance's compute and upload; default costs are all
  /// zero. If upload_bytes_per_instance is 0 it is derived from the
  /// backend's payload_bytes() on first use.
  sim::EdgeNodeCosts costs;
};

/// One unit of work: `images` holds 1..N instances ([C,H,W] or
/// [B,C,H,W]); instance i gets result id `id + i`.
struct InferenceRequest {
  std::int64_t id = 0;
  Tensor images;
};

/// Per-instance outcome of Alg. 2.
struct InferenceResult {
  std::int64_t id = 0;
  /// Final prediction in global label space (cloud answer when the
  /// instance was offloaded and the backend responded).
  int prediction = -1;
  core::Route route = core::Route::kMainExit;
  /// True when the instance was cloud-routed and the backend answered.
  bool offloaded = false;
  // Exit-1 signals.
  float entropy = 0.0f;
  float main_confidence = 0.0f;
  float margin = 0.0f;
  /// Max softmax score at exit 2 (0 when the extension did not run).
  float extension_confidence = 0.0f;
  /// Exit-1 argmax (the IsHard detector's input).
  int main_prediction = -1;
  /// Edge prediction before any cloud answer (the offload fallback).
  int edge_prediction = -1;
  // Per-instance cost (EngineConfig::costs pricing).
  double compute_energy_j = 0.0;
  double comm_energy_j = 0.0;
  double compute_time_s = 0.0;
  double comm_time_s = 0.0;
};

/// Route occupancy over a result set.
core::RouteCounts count_routes(const std::vector<InferenceResult>& results);

class InferenceSession {
 public:
  explicit InferenceSession(EngineConfig config);
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Enqueues 1..N instances; blocks while the queue is full. Returns
  /// the result id of the first instance.
  std::int64_t submit(Tensor images);

  /// Waits for every submitted instance, then returns all accumulated
  /// results sorted by id (and clears them for the next round). If a
  /// worker failed, throws std::runtime_error with the first error;
  /// results that completed are kept and returned by the next drain()
  /// call, so the caller can tell which instances survived. Ids are
  /// always the session-global ids submit() returned — match survivors
  /// against those, not against dataset indices (only run() rebases).
  std::vector<InferenceResult> drain();

  /// Synchronous convenience: submits the whole dataset in batch_size
  /// chunks and drains. Result ids are rebased to dataset indices, so
  /// result i corresponds to dataset instance i on every call. Starts a
  /// fresh round: undrained results and stale errors from earlier
  /// rounds are discarded. Must not overlap other submit()/run() calls
  /// (detected and rejected with std::logic_error); for mixed workloads
  /// use submit()/drain().
  std::vector<InferenceResult> run(const data::Dataset& dataset);

  const OffloadBackend& backend() const { return *backend_; }
  const core::RoutingPolicy& routing() const { return *routing_; }
  /// Workers actually serving (worker_threads clamped to the replicas).
  int worker_count() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop(int worker_index);
  void process(core::EdgeInferenceEngine& engine, const std::vector<InferenceRequest>& requests);

  // Serving state derived from the EngineConfig at construction; the
  // config itself is not kept (its policy/backend/replica fields would
  // otherwise be a stale second source of truth).
  int batch_size_;
  sim::EdgeNodeCosts costs_;
  std::shared_ptr<const core::RoutingPolicy> routing_;
  std::shared_ptr<OffloadBackend> backend_;
  std::vector<std::unique_ptr<core::EdgeInferenceEngine>> engines_;  // one per worker

  BoundedQueue<InferenceRequest> queue_;
  std::vector<std::thread> workers_;

  std::atomic<std::int64_t> next_id_{0};

  std::mutex backend_mutex_;  // the backend models one shared cloud link

  std::mutex results_mutex_;
  std::condition_variable drained_;
  std::vector<InferenceResult> results_;
  std::int64_t pending_instances_ = 0;  // guarded by results_mutex_
  std::string worker_error_;            // first failure, rethrown by drain()
};

}  // namespace meanet::runtime
