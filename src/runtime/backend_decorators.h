// Composable OffloadBackend decorators for studying the cloud link
// under churn (ROADMAP "offload transport realism" item).
//
// Each decorator wraps any OffloadBackend and forwards its payload
// contract (needs_images / needs_features / payload_bytes), so chains
// compose freely around either offload mode:
//
//   auto flaky = std::make_shared<RetryingBackend>(
//       std::make_shared<LossyBackend>(
//           std::make_shared<LatencyInjectingBackend>(raw, 0.020), 0.3),
//       3);
//
// Decorators run on the session's offload dispatcher thread, so an
// injected latency delays (and, past the offload timeout, times out)
// cloud-routed instances without ever blocking the edge workers'
// non-cloud traffic.
#pragma once

#include <memory>
#include <mutex>

#include "runtime/offload_backend.h"
#include "sim/clock.h"
#include "util/rng.h"

namespace meanet::runtime {

/// Base decorator: forwards everything to the wrapped backend. Derive
/// and override classify() (and describe()) to perturb the link.
class BackendDecorator : public OffloadBackend {
 public:
  explicit BackendDecorator(std::shared_ptr<OffloadBackend> inner);

  std::vector<int> classify(const OffloadPayload& payload) override;
  bool needs_images() const override { return inner_->needs_images(); }
  bool needs_features() const override { return inner_->needs_features(); }
  std::int64_t payload_bytes(const Shape& image_shape,
                             const Shape& feature_shape) const override {
    return inner_->payload_bytes(image_shape, feature_shape);
  }
  std::string describe() const override { return inner_->describe(); }

 protected:
  OffloadBackend& inner() { return *inner_; }
  const OffloadBackend& inner() const { return *inner_; }

 private:
  std::shared_ptr<OffloadBackend> inner_;
};

/// Sleeps for a delay before every classify() — a fixed floor plus an
/// optional seeded uniform jitter — modelling the WiFi + cloud
/// round-trip the seed's backends answered instantly. Pair with
/// EngineConfig::offload_timeout_s to study the timeout -> edge-fallback
/// path. (For a link whose delay scales with the payload's byte size,
/// use EngineConfig::transport instead.)
class LatencyInjectingBackend : public BackendDecorator {
 public:
  /// `clock` times the injected sleep (null = the process WallClock).
  /// Under a sim::VirtualClock the delay is a scheduled event — it
  /// still gates the dispatcher and the offload timeout, but costs no
  /// wall time — which is what makes latency-heavy soak scenarios run
  /// in milliseconds.
  LatencyInjectingBackend(std::shared_ptr<OffloadBackend> inner, double latency_s,
                          double jitter_s = 0.0, std::uint64_t seed = 0x117e5ULL,
                          std::shared_ptr<sim::Clock> clock = nullptr);

  std::vector<int> classify(const OffloadPayload& payload) override;
  std::string describe() const override;

  double latency_s() const { return latency_s_; }
  double jitter_s() const { return jitter_s_; }

 private:
  double latency_s_;
  double jitter_s_;
  std::shared_ptr<sim::Clock> clock_;
  std::mutex rng_mutex_;
  util::Rng rng_;
};

/// Drops a classify() entirely (returns the "backend unavailable" empty
/// answer) with probability `loss_rate`, from a seeded deterministic
/// stream — the lossy uplink of a congested WiFi cell.
class LossyBackend : public BackendDecorator {
 public:
  LossyBackend(std::shared_ptr<OffloadBackend> inner, double loss_rate,
               std::uint64_t seed = 0x10551ULL);

  std::vector<int> classify(const OffloadPayload& payload) override;
  std::string describe() const override;

  double loss_rate() const { return loss_rate_; }

 private:
  double loss_rate_;
  std::mutex rng_mutex_;
  util::Rng rng_;
};

/// Re-sends a payload until the wrapped backend answers: a throw or an
/// empty reply consumes one attempt. After `max_attempts` the empty
/// answer propagates (the session falls back to the edge prediction).
/// An optional exponential backoff (backoff_s, 2*backoff_s, 4*...)
/// sleeps on the given clock between failed attempts.
class RetryingBackend : public BackendDecorator {
 public:
  RetryingBackend(std::shared_ptr<OffloadBackend> inner, int max_attempts);
  RetryingBackend(std::shared_ptr<OffloadBackend> inner, int max_attempts, double backoff_s,
                  std::shared_ptr<sim::Clock> clock = nullptr);

  std::vector<int> classify(const OffloadPayload& payload) override;
  std::string describe() const override;

  int max_attempts() const { return max_attempts_; }
  double backoff_s() const { return backoff_s_; }

 private:
  int max_attempts_;
  double backoff_s_ = 0.0;
  std::shared_ptr<sim::Clock> clock_;
};

}  // namespace meanet::runtime
