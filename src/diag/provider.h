// Pull-based diagnostic provider: anything with stats worth exporting
// implements this and registers with the DiagnosticRegistry (RAII:
// diag::ScopedRegistration). The registry PULLS — a provider never
// pushes samples anywhere; it just renders its current counters into a
// diag::Value tree when a snapshot is taken.
//
// Contract (enforced by how DiagnosticRegistry::snapshot() holds its
// lock across provider calls):
//  * diag_snapshot() must be safe to call from any thread at any point
//    in the provider's registered lifetime — take your own stats lock
//    inside, exactly like your stats() accessor does.
//  * diag_snapshot() must NOT call back into the registry (register,
//    unregister, or snapshot) — the registry lock is held around it.
//  * Unregister (destroy the ScopedRegistration) before the state a
//    snapshot reads is torn down. Declaring the ScopedRegistration as
//    the LAST member of the owning class gives that for free for
//    member state; state torn down in the destructor BODY is still
//    live during any concurrent snapshot, because member destruction —
//    and thus unregistration — only runs after the body returns.
#pragma once

#include <string>

#include "diag/value.h"

namespace meanet::diag {

class DiagnosticProvider {
 public:
  virtual ~DiagnosticProvider() = default;

  /// Stable name this provider's tree is keyed by in the registry
  /// export, conventionally "kind" or "kind/instance" ("session/0",
  /// "cell/1", "gemm_pool"). Must not change while registered.
  virtual std::string diag_name() const = 0;

  /// Point-in-time stats as an ordered key/value tree.
  virtual Value diag_snapshot() const = 0;
};

}  // namespace meanet::diag
