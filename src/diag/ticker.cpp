#include "diag/ticker.h"

#include <stdexcept>

namespace meanet::diag {

Ticker::Ticker(std::shared_ptr<sim::Clock> clock, double period_s, std::function<void()> fn)
    : clock_(sim::resolve_clock(std::move(clock))), period_s_(period_s), fn_(std::move(fn)) {
  if (!(period_s_ > 0.0)) throw std::invalid_argument("Ticker: period_s must be positive");
  if (!fn_) throw std::invalid_argument("Ticker: callback must be set");
  thread_ = std::thread([this] { loop(); });
}

Ticker::~Ticker() { stop(); }

void Ticker::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  clock_->notify(cv_);
  // join under its own mutex so stop() is idempotent and safe to call
  // concurrently (mutex_ cannot guard the join: loop() holds it).
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (thread_.joinable()) thread_.join();
}

std::uint64_t Ticker::ticks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

void Ticker::loop() {
  sim::ActorGuard actor(*clock_);
  sim::Clock::TimePoint deadline = sim::Clock::after(clock_->now(), period_s_);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      clock_->wait(lock, cv_, deadline, [this] { return stopping_; });
      if (stopping_) return;
      ++ticks_;
    }
    fn_();
    deadline = sim::Clock::after(deadline, period_s_);
  }
}

}  // namespace meanet::diag
