// Process-wide diagnostic registry: every stats producer (sessions,
// cells, the wire server, the GEMM pool, response caches) registers a
// DiagnosticProvider, and ONE snapshot() pulls them all into a single
// versioned JSON document — the aggregate view a multi-session run
// never had while each subsystem kept its own ad-hoc stats shape.
//
// Snapshot envelope (schema diag::kSchemaVersion):
//
//   {
//     "schema": "meanet.diag.v1",
//     "providers": {
//       "session/0":  { ...provider tree... },
//       "cell/0":     { ... },
//       "gemm_pool":  { ... }
//     }
//   }
//
// Keys follow registration order; two live providers that report the
// same name are disambiguated with a "#2", "#3"... suffix at snapshot
// time, so a snapshot never silently drops one.
//
// Thread safety: the registry mutex is held for the WHOLE of
// snapshot(), including every provider's diag_snapshot() call. That is
// the teeth of the RAII contract — a ScopedRegistration destructor
// blocks until an in-flight snapshot finishes, so a provider can never
// be mid-snapshot while its owner is being destroyed. The flip side is
// the rule in provider.h: providers must not call back into the
// registry from diag_snapshot().
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "diag/provider.h"
#include "diag/value.h"

namespace meanet::diag {

class DiagnosticRegistry {
 public:
  /// The process-wide registry. Intentionally leaked (never destroyed):
  /// providers with static storage duration — the GemmPool singleton —
  /// unregister during static destruction, which must find the registry
  /// alive regardless of TU destruction order.
  static DiagnosticRegistry& global();

  DiagnosticRegistry() = default;
  DiagnosticRegistry(const DiagnosticRegistry&) = delete;
  DiagnosticRegistry& operator=(const DiagnosticRegistry&) = delete;

  /// Registers / removes a provider. Prefer ScopedRegistration; these
  /// are exposed for it and for tests. add() of an already-registered
  /// pointer and remove() of an unknown pointer are both no-ops.
  void add(const DiagnosticProvider* provider);
  void remove(const DiagnosticProvider* provider);

  /// Names of the registered providers, in registration order (without
  /// the duplicate-disambiguation suffix).
  std::vector<std::string> names() const;
  std::size_t size() const;

  /// One consistent snapshot of every registered provider, wrapped in
  /// the versioned envelope documented above.
  Value snapshot() const;

  /// Snapshot of the single provider registered under `name` (first
  /// match in registration order); a null Value when absent.
  Value snapshot_of(const std::string& name) const;

  /// to_json(snapshot(), indent) — the one exporter consumers call.
  std::string to_json(int indent = 2) const;

 private:
  mutable std::mutex mutex_;
  std::vector<const DiagnosticProvider*> providers_;  // guarded by mutex_
};

/// Move-only RAII registration with DiagnosticRegistry. The default
/// constructor holds nothing (so it can be a member that is only armed
/// when diagnostics apply); destruction unregisters, blocking until any
/// in-flight snapshot has finished with the provider.
class ScopedRegistration {
 public:
  ScopedRegistration() = default;
  ScopedRegistration(DiagnosticRegistry& registry, const DiagnosticProvider* provider)
      : registry_(&registry), provider_(provider) {
    registry_->add(provider_);
  }
  ~ScopedRegistration() { reset(); }

  ScopedRegistration(ScopedRegistration&& other) noexcept
      : registry_(other.registry_), provider_(other.provider_) {
    other.registry_ = nullptr;
    other.provider_ = nullptr;
  }
  ScopedRegistration& operator=(ScopedRegistration&& other) noexcept {
    if (this != &other) {
      reset();
      registry_ = other.registry_;
      provider_ = other.provider_;
      other.registry_ = nullptr;
      other.provider_ = nullptr;
    }
    return *this;
  }
  ScopedRegistration(const ScopedRegistration&) = delete;
  ScopedRegistration& operator=(const ScopedRegistration&) = delete;

  /// Unregisters now (idempotent).
  void reset() {
    if (registry_ != nullptr) registry_->remove(provider_);
    registry_ = nullptr;
    provider_ = nullptr;
  }

  bool armed() const { return registry_ != nullptr; }

 private:
  DiagnosticRegistry* registry_ = nullptr;
  const DiagnosticProvider* provider_ = nullptr;
};

}  // namespace meanet::diag
