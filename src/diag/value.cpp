#include "diag/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace meanet::diag {

Value& Value::set(std::string key, Value value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [name, held] : fields_) {
    if (name == key) {
      held = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Value& Value::push(Value value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, held] : fields_) {
    if (name == key) return &held;
  }
  return nullptr;
}

std::int64_t Value::as_int() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      return static_cast<std::int64_t>(uint_);
    case Kind::kDouble:
      return static_cast<std::int64_t>(double_);
    case Kind::kBool:
      return bool_ ? 1 : 0;
    default:
      return 0;
  }
}

std::uint64_t Value::as_uint() const {
  switch (kind_) {
    case Kind::kUint:
      return uint_;
    case Kind::kInt:
      return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
    case Kind::kDouble:
      return double_ < 0.0 ? 0 : static_cast<std::uint64_t>(double_);
    case Kind::kBool:
      return bool_ ? 1 : 0;
    default:
      return 0;
  }
}

double Value::as_double() const {
  switch (kind_) {
    case Kind::kDouble:
      return double_;
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kBool:
      return bool_ ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void append_value(std::string& out, const Value& value, int indent, int depth) {
  const bool pretty = indent > 0;
  auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (value.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kInt:
      out += std::to_string(value.as_int());
      break;
    case Value::Kind::kUint:
      out += std::to_string(value.as_uint());
      break;
    case Value::Kind::kDouble:
      append_double(out, value.as_double());
      break;
    case Value::Kind::kString:
      append_escaped(out, value.as_string());
      break;
    case Value::Kind::kArray: {
      if (value.items().empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& item : value.items()) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        append_value(out, item, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      if (value.fields().empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, held] : value.fields()) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        append_escaped(out, key);
        out += pretty ? ": " : ":";
        append_value(out, held, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

// ---- json_well_formed: a strict non-allocating syntax walker ----

struct Cursor {
  const char* p;
  const char* end;

  bool done() const { return p >= end; }
  char peek() const { return *p; }
  void skip_ws() {
    while (!done() && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool consume(char c) {
    if (done() || *p != c) return false;
    ++p;
    return true;
  }
  bool consume_literal(const char* lit) {
    const char* q = p;
    while (*lit) {
      if (q >= end || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }
};

bool parse_value(Cursor& c, int depth);

bool parse_string(Cursor& c) {
  if (!c.consume('"')) return false;
  while (!c.done()) {
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '\\') {
      if (c.done()) return false;
      const char esc = *c.p++;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          break;
        case 'u': {
          for (int i = 0; i < 4; ++i) {
            if (c.done() || !std::isxdigit(static_cast<unsigned char>(*c.p))) return false;
            ++c.p;
          }
          break;
        }
        default:
          return false;
      }
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c) {
  const char* start = c.p;
  c.consume('-');
  if (c.done() || !std::isdigit(static_cast<unsigned char>(*c.p))) return false;
  if (*c.p == '0') {
    ++c.p;
  } else {
    while (!c.done() && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  if (!c.done() && *c.p == '.') {
    ++c.p;
    if (c.done() || !std::isdigit(static_cast<unsigned char>(*c.p))) return false;
    while (!c.done() && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  if (!c.done() && (*c.p == 'e' || *c.p == 'E')) {
    ++c.p;
    if (!c.done() && (*c.p == '+' || *c.p == '-')) ++c.p;
    if (c.done() || !std::isdigit(static_cast<unsigned char>(*c.p))) return false;
    while (!c.done() && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  return c.p > start;
}

bool parse_value(Cursor& c, int depth) {
  if (depth > 64) return false;  // bound hostile nesting
  c.skip_ws();
  if (c.done()) return false;
  const char ch = c.peek();
  if (ch == '"') return parse_string(c);
  if (ch == '{') {
    ++c.p;
    c.skip_ws();
    if (c.consume('}')) return true;
    while (true) {
      c.skip_ws();
      if (!parse_string(c)) return false;
      c.skip_ws();
      if (!c.consume(':')) return false;
      if (!parse_value(c, depth + 1)) return false;
      c.skip_ws();
      if (c.consume(',')) continue;
      return c.consume('}');
    }
  }
  if (ch == '[') {
    ++c.p;
    c.skip_ws();
    if (c.consume(']')) return true;
    while (true) {
      if (!parse_value(c, depth + 1)) return false;
      c.skip_ws();
      if (c.consume(',')) continue;
      return c.consume(']');
    }
  }
  if (ch == 't') return c.consume_literal("true");
  if (ch == 'f') return c.consume_literal("false");
  if (ch == 'n') return c.consume_literal("null");
  return parse_number(c);
}

}  // namespace

std::string to_json(const Value& value, int indent) {
  std::string out;
  append_value(out, value, indent < 0 ? 0 : indent, 0);
  return out;
}

bool json_well_formed(const std::string& text) {
  Cursor c{text.data(), text.data() + text.size()};
  if (!parse_value(c, 0)) return false;
  c.skip_ws();
  return c.done();
}

}  // namespace meanet::diag
