// The diagnostics value tree: a tiny ordered JSON-shaped document that
// every stats producer snapshots into (ROADMAP "unified diagnostics
// surface"; the provider/registry split mirrors fujinet-nio's
// diag/diagnostic_provider.h + diagnostic_registry.h).
//
// diag::Value is deliberately small — null / bool / int64 / uint64 /
// double / string / array / object — and OBJECT FIELDS PRESERVE
// INSERTION ORDER, so a provider's snapshot serializes in the order it
// was built and golden-JSON tests can pin exact bytes. There is no
// parser here; to_json() is the single exporter every consumer (the
// registry dump, the benches' BENCH_*.json, the wire kStatsRequest
// snapshot, meanet_cli's console) renders through, which is what makes
// "live diagnostics" and "tracked baselines" one schema.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace meanet::diag {

/// Version tag stamped into every registry snapshot envelope (the
/// "schema" key). Bump on any incompatible change to the envelope or to
/// a documented provider tree; consumers check it before reading keys.
inline constexpr const char* kSchemaVersion = "meanet.diag.v1";

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  /// Default-constructed Value is JSON null.
  Value() = default;
  Value(bool v) : kind_(Kind::kBool), bool_(v) {}
  Value(int v) : kind_(Kind::kInt), int_(v) {}
  Value(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Value(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  Value(double v) : kind_(Kind::kDouble), double_(v) {}
  Value(const char* v) : kind_(Kind::kString), string_(v) {}
  Value(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}

  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object field write: overwrites an existing key in place (keeping
  /// its position) or appends a new one at the end. Calling set() on a
  /// null Value promotes it to an empty object first, so building
  /// nested trees needs no up-front object() calls.
  Value& set(std::string key, Value value);

  /// Array append; a null Value is promoted to an empty array first.
  Value& push(Value value);

  /// Ordered object fields / array items. Empty for other kinds.
  const std::vector<std::pair<std::string, Value>>& fields() const { return fields_; }
  const std::vector<Value>& items() const { return items_; }

  /// Object lookup by key; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  // Scalar reads; each returns the natural zero when the kind differs
  // (diagnostics consumers prefer a zero to an exception).
  bool as_bool() const { return kind_ == Kind::kBool ? bool_ : false; }
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const { return string_; }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Renders `value` as JSON text. `indent` > 0 pretty-prints with that
/// many spaces per level; 0 emits one compact line. Object keys keep
/// insertion order; non-finite doubles render as null (JSON has no
/// inf/nan); strings are escaped per RFC 8259. The output ends without
/// a trailing newline.
std::string to_json(const Value& value, int indent = 2);

/// Strict syntax check of one JSON document (used by the schema tests
/// and the CI snapshot validation): true iff `text` is a single
/// well-formed JSON value with nothing but whitespace after it.
bool json_well_formed(const std::string& text);

}  // namespace meanet::diag
