#include "diag/registry.h"

#include <algorithm>

namespace meanet::diag {

DiagnosticRegistry& DiagnosticRegistry::global() {
  // Leaked on purpose — see the header. Static providers (GemmPool)
  // unregister during static destruction and must find this alive.
  static DiagnosticRegistry* const registry = new DiagnosticRegistry();
  return *registry;
}

void DiagnosticRegistry::add(const DiagnosticProvider* provider) {
  if (provider == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(providers_.begin(), providers_.end(), provider) != providers_.end()) return;
  providers_.push_back(provider);
}

void DiagnosticRegistry::remove(const DiagnosticProvider* provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_.erase(std::remove(providers_.begin(), providers_.end(), provider),
                   providers_.end());
}

std::vector<std::string> DiagnosticRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(providers_.size());
  for (const DiagnosticProvider* provider : providers_) {
    out.push_back(provider->diag_name());
  }
  return out;
}

std::size_t DiagnosticRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return providers_.size();
}

Value DiagnosticRegistry::snapshot() const {
  // The lock spans every provider call: unregistration (and therefore
  // provider destruction) cannot overlap a snapshot in progress.
  std::lock_guard<std::mutex> lock(mutex_);
  Value providers = Value::object();
  for (const DiagnosticProvider* provider : providers_) {
    std::string key = provider->diag_name();
    if (providers.find(key) != nullptr) {
      // Two live providers with one name: suffix instead of dropping.
      int n = 2;
      while (providers.find(key + "#" + std::to_string(n)) != nullptr) ++n;
      key += "#" + std::to_string(n);
    }
    providers.set(std::move(key), provider->diag_snapshot());
  }
  Value out = Value::object();
  out.set("schema", kSchemaVersion);
  out.set("providers", std::move(providers));
  return out;
}

Value DiagnosticRegistry::snapshot_of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const DiagnosticProvider* provider : providers_) {
    if (provider->diag_name() == name) return provider->diag_snapshot();
  }
  return Value();
}

std::string DiagnosticRegistry::to_json(int indent) const {
  return diag::to_json(snapshot(), indent);
}

}  // namespace meanet::diag
