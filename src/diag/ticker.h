// Clock-driven periodic runner for diagnostics consumers: fires a
// callback every `period_s` on a sim::Clock, which is what lets
// meanet_cloudd's --stats-every-s dump go through the clock seam — a
// daemon embedded in a virtual-time test ticks on scheduled events and
// can never block virtual time from advancing (the ticker thread
// registers as a clock actor for its whole loop).
//
// Schedule: fixed-rate, not fixed-delay — the next deadline is computed
// as previous_deadline + period before the callback runs, so a slow
// callback under WallClock skews the phase but not the long-run rate,
// and under VirtualClock the tick times are exactly t0 + k*period.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "sim/clock.h"

namespace meanet::diag {

class Ticker {
 public:
  /// Starts a thread that invokes `fn` every `period_s` seconds on
  /// `clock` (null = the process WallClock) until stop()/destruction.
  /// period_s must be positive. The first tick fires one period after
  /// construction, not immediately.
  Ticker(std::shared_ptr<sim::Clock> clock, double period_s, std::function<void()> fn);
  ~Ticker();

  Ticker(const Ticker&) = delete;
  Ticker& operator=(const Ticker&) = delete;

  /// Stops the ticking thread and joins it; idempotent. A callback in
  /// flight completes first; no further ticks fire after return.
  void stop();

  /// Ticks fired so far.
  std::uint64_t ticks() const;

 private:
  void loop();

  std::shared_ptr<sim::Clock> clock_;
  double period_s_;
  std::function<void()> fn_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;        // guarded by mutex_
  std::uint64_t ticks_ = 0;      // guarded by mutex_
  std::mutex join_mutex_;        // serializes the join in stop()
  std::thread thread_;
};

}  // namespace meanet::diag
