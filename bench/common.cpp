#include "common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "nn/serialize.h"
#include "tensor/ops.h"

namespace meanet::bench {

const char* edge_model_name(EdgeModel model) {
  switch (model) {
    case EdgeModel::kResNetA:
      return "ResNet A";
    case EdgeModel::kResNetB:
      return "ResNet B";
    case EdgeModel::kMobileNetB:
      return "MobileNetV2 B";
  }
  return "?";
}

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifarLike:
      return "CIFAR-100-like";
    case DatasetKind::kImageNetLike:
      return "ImageNet-like";
  }
  return "?";
}

data::SyntheticSpec spec_for(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifarLike: {
      data::SyntheticSpec spec = data::cifar_like_spec();
      spec.train_per_class = 80;
      spec.test_per_class = 25;
      // Tuned so the scaled main block lands in the paper's accuracy
      // regime (~60-75%) instead of saturating.
      spec.min_difficulty = 0.3f;
      spec.max_difficulty = 0.95f;
      spec.noise_stddev = 0.45f;
      return spec;
    }
    case DatasetKind::kImageNetLike: {
      data::SyntheticSpec spec = data::imagenet_like_spec();
      spec.train_per_class = 100;
      spec.test_per_class = 30;
      spec.min_difficulty = 0.5f;
      spec.max_difficulty = 0.98f;
      spec.noise_stddev = 0.7f;
      return spec;
    }
  }
  throw std::logic_error("spec_for: bad kind");
}

int default_num_hard(DatasetKind kind) { return spec_for(kind).num_classes / 2; }

namespace {

core::ResNetConfig resnet_config(DatasetKind kind) {
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  // Paper uses 16/32/64 (CIFAR) and 64/128/256/512 (ImageNet); scaled
  // for the single-core budget.
  config.channels = {8, 16, 32};
  config.image_channels = 3;
  config.num_classes = spec_for(kind).num_classes;
  return config;
}

core::MobileNetConfig mobilenet_config(DatasetKind kind) {
  core::MobileNetConfig config;
  config.stem_channels = 8;
  config.blocks = {{8, 1, 1}, {12, 2, 4}, {12, 1, 4}, {16, 2, 4}, {16, 1, 4}};
  config.image_channels = 3;
  config.num_classes = spec_for(kind).num_classes;
  return config;
}

}  // namespace

core::MEANet build_edge_model(EdgeModel model, DatasetKind kind, int num_hard,
                              core::FusionMode fusion, util::Rng& rng) {
  switch (model) {
    case EdgeModel::kResNetA:
      return core::build_resnet_meanet_a(resnet_config(kind), num_hard, fusion, rng);
    case EdgeModel::kResNetB:
      return core::build_resnet_meanet_b(resnet_config(kind), num_hard, fusion, rng);
    case EdgeModel::kMobileNetB:
      return core::build_mobilenet_meanet_b(mobilenet_config(kind), num_hard, fusion, rng);
  }
  throw std::logic_error("build_edge_model: bad model");
}

namespace {

const char* kCacheDir = "meanet_bench_cache";

std::string system_cache_key(EdgeModel model, DatasetKind kind, int num_hard,
                             core::FusionMode fusion, const TrainBudget& budget,
                             std::uint64_t seed) {
  char key[160];
  std::snprintf(key, sizeof(key), "sys_m%d_k%d_h%d_f%d_e%d_%d_b%d_s%llu",
                static_cast<int>(model), static_cast<int>(kind), num_hard,
                static_cast<int>(fusion), budget.main_epochs, budget.edge_epochs,
                budget.batch_size, static_cast<unsigned long long>(seed));
  return std::string(kCacheDir) + "/" + key;
}

bool load_cached_system(const std::string& prefix, TrainedSystem& system) {
  const std::string dict_path = prefix + ".dict";
  std::ifstream dict_file(dict_path);
  if (!dict_file) return false;
  int num_hard = 0;
  dict_file >> num_hard;
  std::vector<int> hard(static_cast<std::size_t>(num_hard));
  for (int& c : hard) dict_file >> c;
  if (!dict_file) return false;
  try {
    nn::load_model(system.net.main_trunk(), prefix + ".trunk.bin");
    nn::load_model(system.net.main_exit(), prefix + ".exit.bin");
    nn::load_model(system.net.adaptive(), prefix + ".adaptive.bin");
    nn::load_model(system.net.extension(), prefix + ".extension.bin");
  } catch (const std::exception&) {
    return false;
  }
  system.dict = data::ClassDict(system.train.num_classes, hard);
  system.net.freeze_main();  // deployment state after Alg. 1
  std::fprintf(stderr, "[bench cache] loaded %s\n", prefix.c_str());
  return true;
}

void store_cached_system(const std::string& prefix, TrainedSystem& system) {
  std::error_code ec;
  std::filesystem::create_directories(kCacheDir, ec);
  if (ec) return;  // cache is best-effort
  try {
    nn::save_model(system.net.main_trunk(), prefix + ".trunk.bin");
    nn::save_model(system.net.main_exit(), prefix + ".exit.bin");
    nn::save_model(system.net.adaptive(), prefix + ".adaptive.bin");
    nn::save_model(system.net.extension(), prefix + ".extension.bin");
    std::ofstream dict_file(prefix + ".dict", std::ios::trunc);
    dict_file << system.dict.num_hard();
    for (int c : system.dict.hard_classes()) dict_file << ' ' << c;
    dict_file << '\n';
  } catch (const std::exception&) {
    // best-effort: a failed cache write only costs a retrain next run
  }
}

}  // namespace

TrainedSystem train_system(EdgeModel model, DatasetKind kind, int num_hard,
                           core::FusionMode fusion, const TrainBudget& budget,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  data::SyntheticDataset data = data::make_synthetic(spec_for(kind), seed * 7919 + 13);
  util::Rng split_rng = rng.fork();
  data::SplitResult parts = data::split(data.train, 0.9, split_rng);

  util::Rng model_rng = rng.fork();
  TrainedSystem system{std::move(data),       std::move(parts.first), std::move(parts.second),
                       build_edge_model(model, kind, num_hard, fusion, model_rng),
                       data::ClassDict(),     {},                     {}};

  const std::string cache_prefix =
      system_cache_key(model, kind, num_hard, fusion, budget, seed);
  if (load_cached_system(cache_prefix, system)) return system;

  core::DistributedTrainer trainer(system.net);
  core::TrainOptions main_opts;
  main_opts.epochs = budget.main_epochs;
  main_opts.batch_size = budget.batch_size;
  main_opts.sgd.learning_rate = 0.1f;
  // Scaled version of the paper's CIFAR schedule (decay at 60/120/160 of
  // 200 epochs -> decay at 60% / 85% here).
  main_opts.milestones = {(budget.main_epochs * 3) / 5, (budget.main_epochs * 17) / 20};
  util::Rng train_rng = rng.fork();
  system.main_curve = trainer.train_main(system.train, main_opts, train_rng);

  system.dict = trainer.select_hard_classes_from_validation(system.validation, num_hard);

  core::TrainOptions edge_opts;
  edge_opts.epochs = budget.edge_epochs;
  edge_opts.batch_size = budget.batch_size;
  edge_opts.sgd.learning_rate = 0.05f;
  edge_opts.milestones = {(budget.edge_epochs * 3) / 5, (budget.edge_epochs * 17) / 20};
  system.edge_curve = trainer.train_edge_blocks(system.train, system.dict, edge_opts, train_rng);
  store_cached_system(cache_prefix, system);
  return system;
}

nn::Sequential train_cloud_model(const TrainedSystem& system, int epochs, std::uint64_t seed) {
  util::Rng rng(seed);
  const Shape& image = system.train.images.shape();
  nn::Sequential cloud = core::build_cloud_classifier(image.channels(),
                                                      system.train.num_classes, rng);
  char key[128];
  std::snprintf(key, sizeof(key), "%s/cloud_c%d_h%d_w%d_n%d_e%d_s%llu", kCacheDir,
                image.channels(), image.height(), image.width(), system.train.num_classes,
                epochs, static_cast<unsigned long long>(seed));
  const std::string cloud_path = std::string(key) + ".bin";
  {
    std::ifstream probe(cloud_path, std::ios::binary);
    if (probe) {
      try {
        nn::load_model(cloud, cloud_path);
        std::fprintf(stderr, "[bench cache] loaded %s\n", cloud_path.c_str());
        return cloud;
      } catch (const std::exception&) {
        // fall through to retraining
      }
    }
  }
  core::TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 32;
  opts.sgd.learning_rate = 0.1f;
  opts.milestones = {(epochs * 3) / 5, (epochs * 17) / 20};
  util::Rng train_rng = rng.fork();
  core::train_classifier(cloud, system.train, opts, train_rng);
  std::error_code ec;
  std::filesystem::create_directories(kCacheDir, ec);
  if (!ec) {
    try {
      nn::save_model(cloud, cloud_path);
    } catch (const std::exception&) {
    }
  }
  return cloud;
}

EdgeMacs count_edge_macs(const core::MEANet& net, const Shape& instance_shape,
                         core::FusionMode fusion) {
  EdgeMacs macs;
  const nn::LayerStats trunk = net.main_trunk().stats(instance_shape);
  const Shape feature_shape = net.main_trunk().output_shape(instance_shape);
  const nn::LayerStats exit1 = net.main_exit().stats(feature_shape);
  macs.main = trunk.macs + exit1.macs;

  const nn::LayerStats adaptive = net.adaptive().stats(instance_shape);
  Shape fused = feature_shape;
  if (fusion == core::FusionMode::kConcat) {
    const Shape a = net.adaptive().output_shape(instance_shape);
    fused = Shape{feature_shape.batch(), feature_shape.channels() + a.channels(),
                  feature_shape.height(), feature_shape.width()};
  }
  const nn::LayerStats extension = net.extension().stats(fused);
  macs.extension = adaptive.macs + extension.macs;
  return macs;
}

std::vector<int> meanet_predictions_always_extended(core::MEANet& net,
                                                    const data::Dataset& dataset,
                                                    const data::ClassDict& dict,
                                                    int batch_size) {
  std::vector<int> predictions;
  predictions.reserve(static_cast<std::size_t>(dataset.size()));
  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const Tensor images = dataset.images.slice_batch(start, count);
    const core::MainForward fwd = net.forward_main(images, nn::Mode::kEval);
    const Tensor y2 = net.forward_extension(images, fwd.features, nn::Mode::kEval);
    const Tensor p1 = ops::softmax(fwd.logits);
    const Tensor p2 = ops::softmax(y2);
    const auto pred1 = ops::row_argmax(p1);
    const auto conf1 = ops::row_max(p1);
    const auto pred2 = ops::row_argmax(p2);
    const auto conf2 = ops::row_max(p2);
    for (int i = 0; i < count; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      predictions.push_back(conf2[idx] > conf1[idx] ? dict.to_global(pred2[idx]) : pred1[idx]);
    }
  }
  return predictions;
}

}  // namespace meanet::bench
