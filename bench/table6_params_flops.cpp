// Table VI of the paper: number of computations (multiply-adds) and
// parameters, split into fixed (frozen main block) and trained
// (adaptive + extension) — the ptflops accounting, reproduced by
// nn::ModelStats.
#include <cstdio>

#include "common.h"
#include "nn/model_stats.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void run(bench::EdgeModel model, bench::DatasetKind kind) {
  util::Rng rng(3);
  core::MEANet net = bench::build_edge_model(model, kind, bench::default_num_hard(kind),
                                             core::FusionMode::kSum, rng);
  net.freeze_main();  // deployment state: main fixed, new blocks trained

  const data::SyntheticSpec spec = bench::spec_for(kind);
  const Shape image{1, spec.channels, spec.height, spec.width};
  const Shape feature = net.main_trunk().output_shape(image);

  nn::ModelStats stats;
  stats += nn::collect_stats(net.main_trunk(), image);
  stats += nn::collect_stats(net.main_exit(), feature);
  stats += nn::collect_stats(net.adaptive(), image);
  stats += nn::collect_stats(net.extension(), feature);

  std::printf("%-16s %-14s %12s %12s %12s %12s\n", bench::dataset_name(kind),
              bench::edge_model_name(model), nn::format_millions(stats.fixed_macs).c_str(),
              nn::format_millions(stats.trained_macs).c_str(),
              nn::format_millions(stats.fixed_params).c_str(),
              nn::format_millions(stats.trained_params).c_str());
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Table VI: computations and parameters, fixed vs trained ===\n");
  std::printf("(millions; computations are multiply-adds per image)\n\n");
  std::printf("%-16s %-14s %12s %12s %12s %12s\n", "dataset", "model", "comp fixed",
              "comp train", "par fixed", "par train");
  run(bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike);
  run(bench::EdgeModel::kMobileNetB, bench::DatasetKind::kImageNetLike);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kImageNetLike);
  std::printf("\npaper reference rows (M): ResNet32A 46/31 comp, 0.11/0.37 par;\n");
  std::printf("ResNet32B 69/31, 0.47/0.42; MobileNetV2B 300/130, 3.49/1.09;\n");
  std::printf("ResNet18B 1722/2058, 11.16/27.46. Scaled models keep the fixed/\n");
  std::printf("trained split structure (model A trains more than it fixes, etc.).\n");
  std::printf("\n[table6] done in %.1f s\n", sw.seconds());
  return 0;
}
