// Table I of the paper: analytic per-deployment cost model. This bench
// prints the symbolic table and then evaluates it numerically for both
// dataset presets (raw-data vs feature offload, several q values).
#include <cstdio>

#include "common.h"
#include "sim/energy_model.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void evaluate(const char* name, const sim::CostParams& params, std::int64_t n, double beta) {
  const sim::EnergyModel model(params);
  std::printf("%s (N=%lld, beta=%.2f; per-image x=%.3g, x_cl=%.3g, x_cu=%.3g, x'_cu=%.3g J)\n",
              name, static_cast<long long>(n), beta, params.edge_compute, params.cloud_compute,
              params.comm_raw, params.comm_features);
  std::printf("%-28s %14s %14s %14s %14s\n", "mode", "edge comp J", "cloud comp J", "comm J",
              "edge total J");
  auto row = [&](const char* mode, const sim::CostBreakdown& c) {
    std::printf("%-28s %14.2f %14.2f %14.2f %14.2f\n", mode, c.edge_compute, c.cloud_compute,
                c.communication, c.edge_total());
  };
  row("edge", model.edge_only(n));
  row("cloud", model.cloud_only(n));
  row("edge-cloud (raw data)", model.edge_cloud_raw(n, beta));
  for (const double q : {1.0 / 3.0, 0.5, 2.0 / 3.0}) {
    char mode[48];
    std::snprintf(mode, sizeof(mode), "edge-cloud (features,q=%.2f)", q);
    row(mode, model.edge_cloud_features(n, beta, q));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Table I: cost estimation of inference deployments ===\n\n");
  std::printf("symbolic form (paper Table I):\n");
  std::printf("  edge                 : N*x          | -              | -\n");
  std::printf("  cloud                : -            | N*x_cl         | N*x_cu\n");
  std::printf("  edge-cloud (raw)     : N*x          | b*N*x_cl       | b*N*x_cu\n");
  std::printf("  edge-cloud (features): N*(q*x)      | b*N*(1-q)*x_cl | b*N*x'_cu\n\n");

  const sim::WifiModel wifi;

  // CIFAR-like preset: paper constants (Table VII) — small images, so
  // features are *larger* than raw data (paper §III-D).
  sim::CostParams cifar;
  cifar.edge_compute = sim::DeviceModel::paper_cifar_gpu().compute_energy_j(69'000'000);
  cifar.cloud_compute = 0.0;  // paper: cloud compute is not an edge concern
  cifar.comm_raw = wifi.upload_energy_j(32 * 32 * 3);
  cifar.comm_features = wifi.upload_energy_j(2 * 32 * 32 * 3);  // features bigger
  evaluate("CIFAR-100 preset", cifar, 10000, 0.15);

  // ImageNet-like preset: large raw images, features smaller.
  sim::CostParams imagenet;
  imagenet.edge_compute = sim::DeviceModel::paper_imagenet_gpu().compute_energy_j(1'722'000'000);
  imagenet.cloud_compute = 0.0;
  imagenet.comm_raw = wifi.upload_energy_j(224 * 224 * 3);
  imagenet.comm_features = wifi.upload_energy_j(224 * 224 * 3 / 4);
  evaluate("ImageNet preset", imagenet, 50000, 0.28);

  std::printf("[table1] done in %.1f s\n", sw.seconds());
  return 0;
}
