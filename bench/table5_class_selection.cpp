// Table V of the paper: effect of the class selection (which classes
// and how many) on the accuracy of the *selected* classes, main block
// vs MEANet, on the CIFAR-100 stand-in with ResNet A.
// Paper shape: fewer selected classes -> bigger MEANet gain; selecting
// by class-wise complexity (hard) is the recommended policy.
#include <cstdio>
#include <numeric>

#include "common.h"
#include "core/complexity.h"
#include "metrics/classification_metrics.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

enum class Selection { kHard, kRandom, kAll };

void run(Selection selection, int count, const char* label) {
  // Fresh system per row (the extension head size depends on `count`).
  util::Rng rng(1234);
  data::SyntheticDataset data =
      data::make_synthetic(bench::spec_for(bench::DatasetKind::kCifarLike), 1234 * 7919 + 13);
  util::Rng split_rng = rng.fork();
  data::SplitResult parts = data::split(data.train, 0.9, split_rng);
  util::Rng model_rng = rng.fork();
  core::MEANet net = bench::build_edge_model(bench::EdgeModel::kResNetA,
                                             bench::DatasetKind::kCifarLike, count,
                                             core::FusionMode::kSum, model_rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions main_opts;
  main_opts.epochs = 10;
  main_opts.batch_size = 32;
  main_opts.sgd.learning_rate = 0.1f;
  main_opts.milestones = {6, 8};
  util::Rng train_rng = rng.fork();
  trainer.train_main(parts.first, main_opts, train_rng);

  // Selection policy.
  std::vector<int> selected;
  switch (selection) {
    case Selection::kHard: {
      const core::MainProfile profile = core::profile_main(net, parts.second);
      selected = core::select_hard_classes(profile.confusion, count);
      break;
    }
    case Selection::kRandom: {
      util::Rng sel_rng(42);
      selected = core::select_random_classes(20, count, sel_rng);
      break;
    }
    case Selection::kAll: {
      selected.resize(20);
      std::iota(selected.begin(), selected.end(), 0);
      break;
    }
  }
  const data::ClassDict dict(20, selected);

  core::TrainOptions edge_opts;
  edge_opts.epochs = 10;
  edge_opts.batch_size = 32;
  edge_opts.sgd.learning_rate = 0.05f;
  edge_opts.milestones = {6, 8};
  trainer.train_edge_blocks(parts.first, dict, edge_opts, train_rng);

  const data::Dataset sel_train = data::filter_by_labels(parts.first, selected);
  const data::Dataset sel_test = data::filter_by_labels(data.test, selected);
  auto accuracy_pair = [&](const data::Dataset& ds) {
    const core::MainProfile p = core::profile_main(net, ds);
    const std::vector<int> meanet =
        bench::meanet_predictions_always_extended(net, ds, dict);
    return std::pair<double, double>{p.accuracy, metrics::accuracy(meanet, ds.labels)};
  };
  const auto [train_main_acc, train_mea_acc] = accuracy_pair(sel_train);
  const auto [test_main_acc, test_mea_acc] = accuracy_pair(sel_test);
  std::printf("%-12s %11.2f %11.2f %11.2f %11.2f\n", label, 100.0 * train_main_acc,
              100.0 * train_mea_acc, 100.0 * test_main_acc, 100.0 * test_mea_acc);
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Table V: effect of class selection (ResNet A, 20-class set) ===\n");
  std::printf("accuracy of the *selected* classes (%%)\n\n");
  std::printf("%-12s %11s %11s %11s %11s\n", "selection", "train-main", "train-MEA",
              "test-main", "test-MEA");
  run(Selection::kHard, 10, "10 hard");
  run(Selection::kRandom, 10, "10 random");
  run(Selection::kHard, 14, "14 hard");
  run(Selection::kAll, 20, "20 (all)");
  std::printf("\npaper reference (50/50r/70/100 of 100 classes): the gain shrinks as\n");
  std::printf("more classes are selected; class-complexity selection is preferred.\n");
  std::printf("\n[table5] done in %.1f s\n", sw.seconds());
  return 0;
}
