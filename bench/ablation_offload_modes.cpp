// Ablation (paper §III-C): raw-data offload (independent cloud model,
// the paper's choice) vs feature offload (partitioned network) vs no
// cloud at all — all three served through the SAME runtime
// InferenceSession, differing only in the EngineConfig's offload mode.
// Measures end-to-end routed accuracy, cloud-path accuracy and upload
// payload per offloaded instance for each backend.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "runtime/session.h"
#include "sim/cloud_node.h"
#include "sim/feature_cloud.h"
#include "util/stopwatch.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Ablation: raw-data vs feature offload (one serving API) ===\n\n");

  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});
  const data::Dataset& test = system.data.test;

  // Raw-data mode: independent deep cloud model.
  nn::Sequential cloud_model = bench::train_cloud_model(system);
  const core::MainProfile raw_profile = core::profile_classifier(cloud_model, test);
  sim::CloudNode cloud(std::move(cloud_model));

  // Feature mode: partitioned head on the main-trunk features.
  const Shape feature_shape = system.net.main_trunk().output_shape(test.instance_shape());
  util::Rng head_rng(31);
  sim::FeatureCloudNode feature_cloud(feature_shape, test.num_classes, head_rng);
  core::TrainOptions opts;
  opts.epochs = 14;
  opts.batch_size = 32;
  opts.milestones = {8, 12};
  util::Rng train_rng(32);
  feature_cloud.train(system.net, system.train, opts, train_rng);
  const data::Dataset test_features = sim::extract_features(system.net, test);
  const std::vector<int> feature_preds = feature_cloud.classify_features(test_features.images);
  std::int64_t feature_correct = 0;
  for (std::size_t i = 0; i < feature_preds.size(); ++i) {
    if (feature_preds[i] == test.labels[i]) ++feature_correct;
  }
  const double feature_acc = static_cast<double>(feature_correct) / test.size();

  // One serving configuration; only the offload mode changes per row.
  const sim::WifiModel wifi;
  auto serve_with = [&](runtime::OffloadMode mode) {
    runtime::EngineConfig cfg;
    cfg.net = &system.net;
    cfg.dict = &system.dict;
    cfg.policy_config.cloud_available = mode != runtime::OffloadMode::kNone;
    cfg.policy_config.entropy_threshold = 0.6;
    cfg.offload_mode = mode;
    cfg.cloud = &cloud;
    cfg.feature_cloud = &feature_cloud;
    runtime::InferenceSession session(cfg);
    const auto results = session.run(test);
    std::int64_t correct = 0;
    for (const auto& r : results) {
      if (r.prediction == test.labels[static_cast<std::size_t>(r.id)]) ++correct;
    }
    struct Row {
      double accuracy;
      double cloud_fraction;
    };
    return Row{static_cast<double>(correct) / test.size(),
               runtime::count_routes(results).cloud_fraction()};
  };
  const auto raw_row = serve_with(runtime::OffloadMode::kRawImage);
  const auto feature_row = serve_with(runtime::OffloadMode::kFeature);
  const auto none_row = serve_with(runtime::OffloadMode::kNone);

  // Price the payloads through the same backend seam the session uses,
  // so the printed columns cannot diverge from what serving charges.
  const Shape image_shape = test.instance_shape();
  const std::int64_t raw_bytes =
      runtime::RawImageBackend(&cloud).payload_bytes(image_shape, feature_shape);
  const std::int64_t feature_bytes =
      runtime::FeatureBackend(&feature_cloud).payload_bytes(image_shape, feature_shape);

  std::printf("%-26s %10s %12s %10s %14s %16s\n", "mode", "acc%", "cloud acc%", "offload%",
              "payload bytes", "upload energy mJ");
  std::printf("%-26s %10.2f %12.2f %10.1f %14lld %16.3f\n", "raw data (paper choice)",
              100.0 * raw_row.accuracy, 100.0 * raw_profile.accuracy,
              100.0 * raw_row.cloud_fraction, static_cast<long long>(raw_bytes),
              1e3 * wifi.upload_energy_j(raw_bytes));
  std::printf("%-26s %10.2f %12.2f %10.1f %14lld %16.3f\n", "features (partitioned)",
              100.0 * feature_row.accuracy, 100.0 * feature_acc,
              100.0 * feature_row.cloud_fraction, static_cast<long long>(feature_bytes),
              1e3 * wifi.upload_energy_j(feature_bytes));
  std::printf("%-26s %10.2f %12s %10.1f %14d %16.3f\n", "edge only (null backend)",
              100.0 * none_row.accuracy, "-", 100.0 * none_row.cloud_fraction, 0, 0.0);

  std::printf("\npaper observations reproduced: (1) for small images the feature\n");
  std::printf("payload exceeds the raw payload (Table I note), and (2) the\n");
  std::printf("independent cloud model is free to be stronger than a partitioned\n");
  std::printf("head that is locked to the edge's frozen features.\n");
  std::printf("\n[ablation_offload_modes] done in %.1f s\n", sw.seconds());
  return 0;
}
