// Ablation (paper §III-C): raw-data offload (independent cloud model,
// the paper's choice) vs feature offload (partitioned network). Measures
// cloud-path accuracy and upload payload per offloaded instance for
// both modes on the same trained edge system.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "sim/feature_cloud.h"
#include "util/stopwatch.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Ablation: raw-data vs feature offload ===\n\n");

  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});

  // Raw-data mode: independent deep cloud model.
  nn::Sequential cloud_model = bench::train_cloud_model(system);
  const core::MainProfile raw_profile =
      core::profile_classifier(cloud_model, system.data.test);

  // Feature mode: partitioned head on the main-trunk features.
  const Shape feature_shape =
      system.net.main_trunk().output_shape(system.data.test.instance_shape());
  util::Rng head_rng(31);
  sim::FeatureCloudNode feature_cloud(feature_shape, system.data.test.num_classes, head_rng);
  core::TrainOptions opts;
  opts.epochs = 14;
  opts.batch_size = 32;
  opts.milestones = {8, 12};
  util::Rng train_rng(32);
  feature_cloud.train(system.net, system.train, opts, train_rng);
  const data::Dataset test_features = sim::extract_features(system.net, system.data.test);
  const std::vector<int> feature_preds =
      feature_cloud.classify_features(test_features.images);
  std::int64_t feature_correct = 0;
  for (std::size_t i = 0; i < feature_preds.size(); ++i) {
    if (feature_preds[i] == system.data.test.labels[i]) ++feature_correct;
  }
  const double feature_acc =
      static_cast<double>(feature_correct) / system.data.test.size();

  const std::int64_t raw_bytes = system.data.test.instance_shape().numel();  // 1B/px equiv
  const std::int64_t feature_bytes = sim::FeatureCloudNode::feature_bytes(feature_shape);
  const sim::WifiModel wifi;

  std::printf("%-26s %12s %16s %16s\n", "mode", "cloud acc%", "payload bytes",
              "upload energy mJ");
  std::printf("%-26s %12.2f %16lld %16.3f\n", "raw data (paper choice)",
              100.0 * raw_profile.accuracy, static_cast<long long>(raw_bytes),
              1e3 * wifi.upload_energy_j(raw_bytes));
  std::printf("%-26s %12.2f %16lld %16.3f\n", "features (partitioned)", 100.0 * feature_acc,
              static_cast<long long>(feature_bytes),
              1e3 * wifi.upload_energy_j(feature_bytes));

  std::printf("\npaper observations reproduced: (1) for small images the feature\n");
  std::printf("payload exceeds the raw payload (Table I note), and (2) the\n");
  std::printf("independent cloud model is free to be stronger than a partitioned\n");
  std::printf("head that is locked to the edge's frozen features.\n");
  std::printf("\n[ablation_offload_modes] done in %.1f s\n", sw.seconds());
  return 0;
}
