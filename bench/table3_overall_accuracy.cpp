// Table III of the paper: test accuracy over ALL classes — main block
// alone vs MEANet (routed edge inference, Alg. 2 without cloud) — plus
// the easy/hard detection accuracy of the IsHard rule.
// Paper: ~+2 points on ImageNet, smaller gains on CIFAR; detection
// accuracy 83-91%.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "metrics/classification_metrics.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void run(bench::EdgeModel model, bench::DatasetKind kind) {
  bench::TrainedSystem system = bench::train_system(model, kind, bench::default_num_hard(kind),
                                                    core::FusionMode::kSum, bench::TrainBudget{});
  const data::Dataset& test = system.data.test;

  const core::MainProfile main_profile = core::profile_main(system.net, test);

  // MEANet = routed edge-only inference (no cloud).
  core::EdgeInferenceEngine engine(system.net, system.dict, core::PolicyConfig{});
  const auto decisions = engine.infer_dataset(test);
  std::int64_t correct = 0, detect_correct = 0;
  for (int i = 0; i < test.size(); ++i) {
    const core::InstanceDecision& d = decisions[static_cast<std::size_t>(i)];
    const int label = test.labels[static_cast<std::size_t>(i)];
    if (d.prediction == label) ++correct;
    // Detection accuracy: does IsHard(main prediction) match the label's
    // true category?
    const bool detected_hard = system.dict.is_hard(d.main_prediction);
    if (detected_hard == system.dict.is_hard(label)) ++detect_correct;
  }
  const double meanet_acc = static_cast<double>(correct) / test.size();
  const double detection = static_cast<double>(detect_correct) / test.size();

  std::printf("%-16s %-14s %10.2f %10.2f %12.2f\n", bench::dataset_name(kind),
              bench::edge_model_name(model), 100.0 * main_profile.accuracy,
              100.0 * meanet_acc, 100.0 * detection);
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Table III: test accuracy of all classes (%%), edge only ===\n\n");
  std::printf("%-16s %-14s %10s %10s %12s\n", "dataset", "model", "main", "MEANet",
              "detection%");
  run(bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike);
  run(bench::EdgeModel::kMobileNetB, bench::DatasetKind::kImageNetLike);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kImageNetLike);
  std::printf("\npaper reference: gains ~0.3-2 points over main; detection 83-91%%.\n");
  std::printf("the all-class gain is smaller than the hard-class gain because the\n");
  std::printf("improvement is evened out and IsHard misdetection costs some of it.\n");
  std::printf("\n[table3] done in %.1f s\n", sw.seconds());
  return 0;
}
