// Fig. 3 of the paper: the easy/hard/complex taxonomy. Class-wise
// complexity = validation FDR of the main block; instance-wise
// complexity = prediction entropy. This bench trains a system, then
// prints the FDR ranking (with the induced easy/hard split) and the
// entropy statistics with the derived complex-instance threshold range.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "util/stopwatch.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Fig. 3: easy/hard/complex complexity categories ===\n\n");

  const bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});
  core::MEANet& net = const_cast<core::MEANet&>(system.net);

  const core::MainProfile profile = core::profile_main(net, system.validation);

  std::printf("class-wise complexity (validation FDR of the main block):\n");
  std::printf("%-8s %-10s %-8s\n", "class", "FDR", "category");
  std::vector<int> order(static_cast<std::size_t>(system.validation.num_classes));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return profile.confusion.false_discovery_rate(a) >
           profile.confusion.false_discovery_rate(b);
  });
  for (int c : order) {
    std::printf("%-8d %-10.3f %-8s\n", c, profile.confusion.false_discovery_rate(c),
                system.dict.is_hard(c) ? "hard" : "easy");
  }

  std::printf("\ninstance-wise complexity (prediction entropy at the main exit):\n");
  std::printf("  mu_correct = %.3f nats (%lld instances)\n", profile.entropy.mu_correct(),
              static_cast<long long>(profile.entropy.num_correct()));
  std::printf("  mu_wrong   = %.3f nats (%lld instances)\n", profile.entropy.mu_wrong(),
              static_cast<long long>(profile.entropy.num_wrong()));
  const auto [lo, hi] = profile.entropy.threshold_range();
  std::printf("  complex-instance threshold range (mu_c, mu_w) = (%.3f, %.3f)\n", lo, hi);

  // Category occupancy on the test set at the default threshold.
  const double threshold = profile.entropy.default_threshold();
  const core::MainProfile test_profile = core::profile_main(net, system.data.test);
  std::int64_t easy = 0, hard = 0, complex_count = 0;
  for (std::size_t i = 0; i < test_profile.predictions.size(); ++i) {
    if (test_profile.entropies[i] > threshold) {
      ++complex_count;  // complex may overlap easy/hard (Fig. 3 note)
    }
    if (system.dict.is_hard(test_profile.predictions[i])) {
      ++hard;
    } else {
      ++easy;
    }
  }
  const double n = static_cast<double>(test_profile.predictions.size());
  std::printf("\ntest-set category occupancy at threshold %.3f:\n", threshold);
  std::printf("  detected easy:    %5.1f%%\n", 100.0 * easy / n);
  std::printf("  detected hard:    %5.1f%%\n", 100.0 * hard / n);
  std::printf("  complex (overlaps the above, sent to cloud): %5.1f%%\n",
              100.0 * complex_count / n);
  std::printf("\n[fig3] done in %.1f s\n", sw.seconds());
  return 0;
}
