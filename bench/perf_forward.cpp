// Tracked performance baseline of the inference hot path.
//
// Times the GEMM-backed kernels against the naive per-pixel loop nests
// (the MEANET_NAIVE_KERNELS path) on:
//   - single-image eval forwards of the edge models,
//   - batched eval forwards,
//   - the routing-signal reductions (softmax / argmax / entropy /
//     margin),
//   - end-to-end submit -> settle through a 2-worker InferenceSession
//     sharing one net,
// and emits BENCH_forward.json so every future perf PR is judged
// against a measured trajectory, not vibes.
//
// The model-forward rows additionally time the portable 4x16
// microkernel (SIMD dispatch forced off) and the int8 quantized path
// (ops::QuantizedScope), so the JSON tracks all three serving tiers.
//
// The batch sweep times each model at batch 1 / 8 / 32 under the
// whole-batch conv path (ops::batched_conv) against the per-image
// loop, in float and int8, reporting imgs/s and the batched speedup;
// a depthwise row compares the GemmPool fan-out against single-thread
// at batch 32. The JSON header carries GemmPool::stats() so a run
// proves the pool actually engaged.
//
// Usage: perf_forward [--quick] [--out PATH]
// Exit status is nonzero when, on any single-image forward, the GEMM
// path is *slower* than the naive path, the dispatched SIMD kernel is
// slower than the portable one, or (with a vectorized int8 tier) the
// int8 path is slower than float; when the whole-batch GEMM loses to
// the per-image loop at batch >= 8; or when (with >= 2 hardware
// threads) the threaded depthwise loses to single-thread at batch 32
// — the CI perf smoke gates.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common.h"
#include "diag/value.h"
#include "nn/conv2d.h"
#include "runtime/session.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/qgemm.h"
#include "tensor/simd.h"

using namespace meanet;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median wall-clock milliseconds of `fn` over `reps` runs (one warmup).
template <typename Fn>
double median_ms(int reps, Fn fn) {
  fn();  // warm caches, scratch buffers, branch predictors
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double start = now_s();
    fn();
    samples.push_back((now_s() - start) * 1e3);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Interleaved medians of two alternatives: each rep times `a` then `b`
/// back to back, so a thermal throttle or noisy-neighbor window lands on
/// both paths instead of skewing whichever happened to own that slice of
/// wall clock. The exit gates judge the a/b *ratio*, which interleaving
/// stabilizes far better than extra serialized reps would.
template <typename FnA, typename FnB>
std::pair<double, double> paired_median_ms(int reps, FnA a, FnB b) {
  a();  // warm caches, scratch buffers, branch predictors
  b();
  std::vector<double> sa, sb;
  sa.reserve(static_cast<std::size_t>(reps));
  sb.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_s();
    a();
    const double t1 = now_s();
    b();
    sa.push_back((t1 - t0) * 1e3);
    sb.push_back((now_s() - t1) * 1e3);
  }
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return {sa[sa.size() / 2], sb[sb.size() / 2]};
}

struct Row {
  std::string name;
  double gemm_ms = 0.0;
  double naive_ms = 0.0;
  double portable_ms = 0.0;  // SIMD dispatch forced to the portable kernel
  double int8_ms = 0.0;      // quantized serving path; 0 = not measured
  double speedup() const { return gemm_ms > 0.0 ? naive_ms / gemm_ms : 0.0; }
  double simd_speedup() const { return gemm_ms > 0.0 ? portable_ms / gemm_ms : 0.0; }
  double int8_speedup() const { return int8_ms > 0.0 ? gemm_ms / int8_ms : 0.0; }
};

/// Runs `fn` under both kernel selections.
template <typename Fn>
Row measure(const std::string& name, int reps, Fn fn) {
  Row row;
  row.name = name;
  ops::set_naive_kernels(false);
  row.gemm_ms = median_ms(reps, fn);
  ops::set_naive_kernels(true);
  row.naive_ms = median_ms(reps, fn);
  ops::set_naive_kernels(false);
  std::printf("  %-38s gemm %9.3f ms   naive %9.3f ms   speedup %5.2fx\n", name.c_str(),
              row.gemm_ms, row.naive_ms, row.speedup());
  return row;
}

/// measure() plus the portable-microkernel and int8 tiers — for the
/// model-forward rows where those paths actually engage.
template <typename Fn>
Row measure_tiers(const std::string& name, int reps, Fn fn) {
  Row row = measure(name, reps, fn);
  const ops::SimdLevel level = ops::simd_level();
  ops::set_simd_level(ops::SimdLevel::kPortable);
  row.portable_ms = median_ms(reps, fn);
  ops::set_simd_level(level);
  {
    ops::QuantizedScope quantized(true);
    row.int8_ms = median_ms(reps, fn);
  }
  std::printf("  %-38s portable %5.3f ms  int8 %9.3f ms (%s)    int8 %5.2fx\n", "",
              row.portable_ms, row.int8_ms, ops::int8_kernel_name(ops::int8_kernel()),
              row.int8_speedup());
  return row;
}

struct ModelUnderTest {
  std::string name;
  bench::EdgeModel model;
  bench::DatasetKind kind;
};

/// One point of the batch sweep: whole-batch conv path vs the
/// per-image loop at a fixed batch size, float and int8.
struct BatchRow {
  std::string model;
  int batch = 0;
  double batched_ms = 0.0;         // ops::batched_conv() on (the default)
  double per_image_ms = 0.0;       // ops::batched_conv() off
  double int8_ms = 0.0;            // int8 tier, whole-batch path
  double int8_per_image_ms = 0.0;  // int8 tier, per-image loop
  double imgs_per_s() const {
    return batched_ms > 0.0 ? batch * 1e3 / batched_ms : 0.0;
  }
  double batched_speedup() const {
    return batched_ms > 0.0 ? per_image_ms / batched_ms : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_forward.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_forward [--quick] [--out PATH]\n");
      return 2;
    }
  }
  const int reps = quick ? 5 : 21;
  const int e2e_frames = quick ? 48 : 200;

  std::printf("=== perf_forward: GEMM hot path vs naive kernels (%s) ===\n",
              quick ? "quick" : "full");
  std::vector<Row> rows;
  std::vector<Row> gated;  // single-image rows the exit status checks
  std::vector<BatchRow> sweep;

  const ModelUnderTest models[] = {
      {"resnet_b_cifar", bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike},
      {"mobilenet_b_imagenet", bench::EdgeModel::kMobileNetB,
       bench::DatasetKind::kImageNetLike},
  };
  for (const ModelUnderTest& m : models) {
    util::Rng rng(3);
    core::MEANet net = bench::build_edge_model(m.model, m.kind, bench::default_num_hard(m.kind),
                                               core::FusionMode::kSum, rng);
    const data::SyntheticSpec spec = bench::spec_for(m.kind);
    util::Rng data_rng(9);
    const Tensor single = Tensor::normal(Shape{1, spec.channels, spec.height, spec.width},
                                         data_rng);
    const Tensor batch = Tensor::normal(Shape{32, spec.channels, spec.height, spec.width},
                                        data_rng);
    Row one = measure_tiers(m.name + "_single_image", reps,
                            [&] { (void)net.forward_main(single, nn::Mode::kEval); });
    rows.push_back(one);
    gated.push_back(one);
    rows.push_back(measure_tiers(m.name + "_batch32", std::max(3, reps / 3),
                                 [&] { (void)net.forward_main(batch, nn::Mode::kEval); }));

    // Batch sweep: whole-batch conv path vs the per-image loop, both at
    // auto pool width (the single-stream serving config the batched
    // path is built for — one wide GEMM fans out where the per-image
    // GEMMs of the deep layers sit below the dispatch threshold; on a
    // single-core runner auto resolves to 1 and the comparison is
    // purely the single-thread cost model).
    const int threads_before = ops::gemm_threads();
    ops::set_gemm_threads(0);  // 0 = auto
    for (const int bs : {1, 8, 32}) {
      const Tensor input = Tensor::normal(
          Shape{bs, spec.channels, spec.height, spec.width}, data_rng);
      // The flag flips inside each lambda (one relaxed atomic store) so
      // the two paths can be interleaved rep by rep — see
      // paired_median_ms on why that matters for the gated ratio.
      auto batched_fwd = [&] {
        ops::set_batched_conv(true);
        (void)net.forward_main(input, nn::Mode::kEval);
      };
      auto per_image_fwd = [&] {
        ops::set_batched_conv(false);
        (void)net.forward_main(input, nn::Mode::kEval);
      };
      const int batch_reps = std::max(5, reps / std::max(1, bs / 4));
      BatchRow row;
      row.model = m.name;
      row.batch = bs;
      std::tie(row.batched_ms, row.per_image_ms) =
          paired_median_ms(batch_reps, batched_fwd, per_image_fwd);
      {
        ops::QuantizedScope quantized(true);
        std::tie(row.int8_ms, row.int8_per_image_ms) =
            paired_median_ms(batch_reps, batched_fwd, per_image_fwd);
      }
      ops::set_batched_conv(true);
      std::printf(
          "  %-28s batch %2d   batched %8.3f ms (%7.1f img/s)   per-image %8.3f ms   "
          "%5.2fx   int8 %8.3f/%8.3f ms\n",
          m.name.c_str(), bs, row.batched_ms, row.imgs_per_s(), row.per_image_ms,
          row.batched_speedup(), row.int8_ms, row.int8_per_image_ms);
      sweep.push_back(row);
    }
    ops::set_gemm_threads(threads_before);
  }

  // Depthwise fan-out: one MobileNet-sized depthwise layer at batch 32,
  // GemmPool width 1 vs auto. Isolated from the pointwise GEMMs so the
  // gate judges the depthwise threading alone.
  double dw_single_ms = 0.0, dw_threaded_ms = 0.0;
  int dw_threads = 1;
  {
    util::Rng rng(29);
    nn::DepthwiseConv2d dw(64, 3, 1, 1, rng);
    const Tensor x = Tensor::normal(Shape{32, 64, 56, 56}, rng);
    const int dw_reps = std::max(5, reps / 3);
    const int before = ops::gemm_threads();
    ops::set_gemm_threads(0);  // 0 = auto (hardware concurrency, clamped)
    dw_threads = ops::gemm_threads();
    std::tie(dw_single_ms, dw_threaded_ms) = paired_median_ms(
        dw_reps,
        [&] {
          ops::set_gemm_threads(1);
          (void)dw.forward(x, nn::Mode::kEval);
        },
        [&] {
          ops::set_gemm_threads(0);
          (void)dw.forward(x, nn::Mode::kEval);
        });
    ops::set_gemm_threads(before);
    std::printf("  %-28s batch 32   1 thread %7.3f ms   %d threads %7.3f ms   %5.2fx\n",
                "depthwise_64x56x56", dw_single_ms, dw_threads, dw_threaded_ms,
                dw_threaded_ms > 0.0 ? dw_single_ms / dw_threaded_ms : 0.0);
  }

  {
    // Routing-signal reductions on a serving-sized logits block.
    util::Rng rng(17);
    const Tensor logits = Tensor::normal(Shape{256, 20}, rng);
    Tensor probs;
    std::vector<int> argmax;
    std::vector<float> conf, margin, entropy;
    rows.push_back(measure("routing_signal_reductions_256x20", reps * 4, [&] {
      ops::softmax_into(logits, probs);
      ops::row_argmax_into(probs, argmax);
      ops::row_max_into(probs, conf);
      ops::row_margin_into(probs, margin);
      ops::row_entropy_into(probs, entropy);
    }));
  }

  {
    // End-to-end submit -> settle on a shared net, 2 workers, no cloud.
    util::Rng rng(3);
    core::MEANet net =
        bench::build_edge_model(bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
                                bench::default_num_hard(bench::DatasetKind::kCifarLike),
                                core::FusionMode::kSum, rng);
    const data::SyntheticSpec spec = bench::spec_for(bench::DatasetKind::kCifarLike);
    std::vector<int> hard(static_cast<std::size_t>(
        bench::default_num_hard(bench::DatasetKind::kCifarLike)));
    for (std::size_t i = 0; i < hard.size(); ++i) hard[i] = static_cast<int>(i);
    data::ClassDict dict(spec.num_classes, hard);
    util::Rng data_rng(11);
    std::vector<Tensor> frames;
    for (int i = 0; i < e2e_frames; ++i) {
      frames.push_back(Tensor::normal(Shape{spec.channels, spec.height, spec.width}, data_rng));
    }
    auto serve_once = [&] {
      runtime::EngineConfig cfg;
      cfg.net = &net;
      cfg.dict = &dict;
      cfg.worker_threads = 2;
      cfg.batch_size = 8;
      runtime::InferenceSession session(cfg);
      for (const Tensor& frame : frames) session.submit(frame);
      (void)session.drain();
    };
    rows.push_back(measure("e2e_submit_settle_" + std::to_string(e2e_frames) + "f", 3,
                           serve_once));
  }

  // The tracked baseline is rendered by the shared diag exporter — the
  // same serializer (and schema tag) behind the diagnostics registry.
  diag::Value doc = diag::Value::object();
  doc.set("schema", diag::kSchemaVersion);
  doc.set("bench", "perf_forward");
  doc.set("quick", quick);
  doc.set("gemm_threads", ops::gemm_threads());
  doc.set("simd", ops::simd_level_name(ops::simd_level()));
  doc.set("int8_kernel", ops::int8_kernel_name(ops::int8_kernel()));
  const ops::GemmPool::Stats pool = ops::GemmPool::instance().stats();
  diag::Value pool_v = diag::Value::object();
  pool_v.set("workers", pool.workers);
  pool_v.set("jobs", static_cast<std::uint64_t>(pool.jobs));
  pool_v.set("fanout_jobs", static_cast<std::uint64_t>(pool.fanout_jobs));
  pool_v.set("stripes", static_cast<std::uint64_t>(pool.stripes));
  doc.set("pool", std::move(pool_v));
  diag::Value results = diag::Value::array();
  for (const Row& row : rows) {
    diag::Value v = diag::Value::object();
    v.set("name", row.name);
    v.set("gemm_ms", row.gemm_ms);
    v.set("naive_ms", row.naive_ms);
    v.set("speedup", row.speedup());
    v.set("portable_ms", row.portable_ms);
    v.set("int8_ms", row.int8_ms);
    v.set("int8_speedup", row.int8_speedup());
    results.push(std::move(v));
  }
  doc.set("results", std::move(results));
  diag::Value batch_sweep = diag::Value::array();
  for (const BatchRow& row : sweep) {
    diag::Value v = diag::Value::object();
    v.set("model", row.model);
    v.set("batch", row.batch);
    v.set("batched_ms", row.batched_ms);
    v.set("per_image_ms", row.per_image_ms);
    v.set("imgs_per_s", row.imgs_per_s());
    v.set("batched_speedup", row.batched_speedup());
    v.set("int8_ms", row.int8_ms);
    v.set("int8_per_image_ms", row.int8_per_image_ms);
    batch_sweep.push(std::move(v));
  }
  doc.set("batch_sweep", std::move(batch_sweep));
  diag::Value depthwise = diag::Value::object();
  depthwise.set("single_ms", dw_single_ms);
  depthwise.set("threaded_ms", dw_threaded_ms);
  depthwise.set("threads", dw_threads);
  doc.set("depthwise_batch32", std::move(depthwise));
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  const std::string rendered = diag::to_json(doc);
  std::fprintf(out, "%s\n", rendered.c_str());
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  bool regressed = false;
  for (const Row& row : gated) {
    if (row.speedup() < 1.0) {
      std::fprintf(stderr, "PERF REGRESSION: %s GEMM path (%.3f ms) slower than naive (%.3f ms)\n",
                   row.name.c_str(), row.gemm_ms, row.naive_ms);
      regressed = true;
    } else if (row.speedup() < 3.0) {
      std::printf("note: %s speedup %.2fx is below the 3x target\n", row.name.c_str(),
                  row.speedup());
    }
    // The dispatched microkernel must never lose to the portable one
    // it replaced at startup.
    if (ops::simd_level() != ops::SimdLevel::kPortable && row.portable_ms > 0.0 &&
        row.gemm_ms > row.portable_ms) {
      std::fprintf(stderr,
                   "PERF REGRESSION: %s %s kernel (%.3f ms) slower than portable (%.3f ms)\n",
                   row.name.c_str(), ops::simd_level_name(ops::simd_level()), row.gemm_ms,
                   row.portable_ms);
      regressed = true;
    }
    // With a VNNI tier the int8 path must beat float; the scalar
    // fallback is a correctness tier, not a speed claim.
    if (ops::int8_kernel_vectorized() && row.int8_ms > 0.0 && row.int8_ms > row.gemm_ms) {
      std::fprintf(stderr,
                   "PERF REGRESSION: %s int8 path (%.3f ms) slower than float (%.3f ms)\n",
                   row.name.c_str(), row.int8_ms, row.gemm_ms);
      regressed = true;
    }
  }
  // Whole-batch GEMM must pay for itself once there is a real batch.
  // The 0.90 floor is a noise allowance for shared CI runners: the two
  // paths run identical arithmetic, so a real regression (a packing or
  // dispatch bug) shows up far below it while run-to-run timer jitter
  // on these sub-10ms forwards stays above it.
  for (const BatchRow& row : sweep) {
    if (row.batch >= 8 && row.batched_speedup() < 0.90) {
      std::fprintf(stderr,
                   "PERF REGRESSION: %s batch %d whole-batch path (%.3f ms) slower than "
                   "per-image (%.3f ms)\n",
                   row.model.c_str(), row.batch, row.batched_ms, row.per_image_ms);
      regressed = true;
    }
  }
  // Depthwise fan-out must not lose to single-thread — only judged on
  // hardware that can actually run two threads, with the same noise
  // allowance as the batched gate.
  if (std::thread::hardware_concurrency() >= 2 && dw_threads >= 2 &&
      dw_threaded_ms > 1.10 * dw_single_ms) {
    std::fprintf(stderr,
                 "PERF REGRESSION: depthwise batch-32 at %d threads (%.3f ms) slower than "
                 "single-thread (%.3f ms)\n",
                 dw_threads, dw_threaded_ms, dw_single_ms);
    regressed = true;
  }
  return regressed ? 1 : 0;
}
