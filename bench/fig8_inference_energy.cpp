// Fig. 8 of the paper: total energy consumed *at the edge* (compute +
// communication) to infer the whole test set, for edge-only inference,
// several entropy thresholds, and cloud-only inference.
//
// The routing fractions (beta per threshold) come from our trained
// synthetic systems; the per-image cost constants are the paper's own
// published values (56 W / 75 W device power, 5.48 W WiFi upload,
// 32x32x3- and 224x224x3-byte payloads), so the energy *shape* —
// compute-visible CIFAR vs communication-dominated ImageNet — matches
// Fig. 8 directly (see DESIGN.md §1).
#include <cstdio>

#include "common.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

struct PaperCosts {
  sim::DeviceModel device;
  std::int64_t upload_bytes;
  std::int64_t images;         // paper's test-set size
  std::int64_t main_macs;      // paper model MACs per image
  std::int64_t extension_macs;
};

void run(bench::EdgeModel model, bench::DatasetKind kind, const PaperCosts& paper) {
  bench::TrainedSystem system = bench::train_system(model, kind, bench::default_num_hard(kind),
                                                    core::FusionMode::kSum, bench::TrainBudget{});
  nn::Sequential cloud_model = bench::train_cloud_model(system);
  sim::CloudNode cloud(std::move(cloud_model));

  const sim::WifiModel wifi;
  const double comm_per_image = wifi.upload_energy_j(paper.upload_bytes);
  const double main_energy = paper.device.compute_energy_j(paper.main_macs);
  const double ext_energy = paper.device.compute_energy_j(paper.extension_macs);

  std::printf("%s, %s — energy to infer %lld images (J)\n", bench::dataset_name(kind),
              bench::edge_model_name(model), static_cast<long long>(paper.images));
  std::printf("%-12s %12s %12s %12s %10s %10s\n", "mode", "comm J", "edge comp J", "total J",
              "beta%", "acc%");

  auto print_row = [&](const char* name, double beta, double ext_fraction, double accuracy) {
    const double n = static_cast<double>(paper.images);
    const double comm = beta * n * comm_per_image;
    const double comp = n * main_energy + ext_fraction * n * ext_energy;
    std::printf("%-12s %12.1f %12.1f %12.1f %10.1f %10.1f\n", name, comm, comp, comm + comp,
                100.0 * beta, 100.0 * accuracy);
  };

  // Edge-only row.
  {
    sim::EdgeNodeCosts costs;  // energy recomputed below from paper constants
    sim::EdgeNode edge(system.net, system.dict, core::PolicyConfig{}, costs);
    sim::DistributedSystem distributed(std::move(edge), nullptr);
    const sim::SystemReport r = distributed.run(system.data.test);
    const double ext_fraction =
        static_cast<double>(r.routes.extension_exit) / r.routes.total();
    print_row("edge only", 0.0, ext_fraction, r.accuracy);
  }

  // Threshold rows; the paper uses 1.2 / 1.0 / 0.8 / 0.5 on 100-class
  // entropies — scaled here to the ~2x smaller entropy range of the
  // 10-20 class models.
  for (const double threshold : {0.6, 0.5, 0.4, 0.25}) {
    core::PolicyConfig policy;
    policy.cloud_available = true;
    policy.entropy_threshold = threshold;
    sim::EdgeNodeCosts costs;
    sim::EdgeNode edge(system.net, system.dict, policy, costs);
    sim::DistributedSystem distributed(std::move(edge), &cloud);
    const sim::SystemReport r = distributed.run(system.data.test);
    const double ext_fraction =
        static_cast<double>(r.routes.extension_exit) / r.routes.total();
    char name[32];
    std::snprintf(name, sizeof(name), "thre=%.2f", threshold);
    print_row(name, r.cloud_fraction, ext_fraction, r.accuracy);
  }

  // Cloud-only row: upload everything, no edge compute.
  {
    const core::MainProfile cloud_profile =
        core::profile_classifier(cloud.model(), system.data.test);
    const double n = static_cast<double>(paper.images);
    std::printf("%-12s %12.1f %12.1f %12.1f %10.1f %10.1f\n", "cloud only",
                n * comm_per_image, 0.0, n * comm_per_image, 100.0,
                100.0 * cloud_profile.accuracy);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Fig. 8: edge energy (compute + communication) vs threshold ===\n\n");

  PaperCosts cifar;
  cifar.device = sim::DeviceModel::paper_cifar_gpu();
  cifar.upload_bytes = 32 * 32 * 3;
  cifar.images = 10000;
  cifar.main_macs = 69'000'000;       // paper Table VI: ResNet32 B fixed
  cifar.extension_macs = 31'000'000;  // paper Table VI: trained blocks
  run(bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike, cifar);

  PaperCosts imagenet;
  imagenet.device = sim::DeviceModel::paper_imagenet_gpu();
  imagenet.upload_bytes = 224 * 224 * 3;
  imagenet.images = 50000;
  imagenet.main_macs = 1'722'000'000;  // paper Table VI: ResNet18 B fixed
  imagenet.extension_macs = 2'058'000'000;
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kImageNetLike, imagenet);

  std::printf("expected shapes (paper): CIFAR — at thre=0.5 edge energy approaches\n");
  std::printf("cloud-only; ImageNet — communication dominates, distributed reaches\n");
  std::printf("cloud accuracy at ~60%% of cloud-only edge energy.\n");
  std::printf("\n[fig8] done in %.1f s\n", sw.seconds());
  return 0;
}
