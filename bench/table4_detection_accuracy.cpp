// Table IV of the paper: accuracy of detecting whether an instance
// belongs to the selected ("hard") class set, comparing precision-ranked
// selection against random selection and a larger selection.
// Paper (100 classes): 50 hard 83.5%, 50 random 81.8%, 70 hard 86.9%.
// Here (20 classes): 10 hard / 10 random / 14 hard.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

double detection_accuracy(const core::MainProfile& profile, const data::Dataset& test,
                          const data::ClassDict& dict) {
  std::int64_t correct = 0;
  for (int i = 0; i < test.size(); ++i) {
    const bool detected_hard = dict.is_hard(profile.predictions[static_cast<std::size_t>(i)]);
    const bool truly_hard = dict.is_hard(test.labels[static_cast<std::size_t>(i)]);
    if (detected_hard == truly_hard) ++correct;
  }
  return static_cast<double>(correct) / test.size();
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Table IV: detection accuracy of easy/hard classes ===\n");
  std::printf("(20-class synthetic CIFAR-100 stand-in; paper used 100 classes)\n\n");

  // One trained main block shared by all three selections.
  bench::TrainBudget budget;
  budget.edge_epochs = 1;  // the edge blocks play no role in detection
  bench::TrainedSystem system =
      bench::train_system(bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike, 10,
                          core::FusionMode::kSum, budget);

  const core::MainProfile val_profile = core::profile_main(system.net, system.validation);
  const core::MainProfile test_profile = core::profile_main(system.net, system.data.test);

  std::printf("%-18s %14s\n", "selected classes", "detection %");

  // 10 hard (precision-ranked).
  {
    const data::ClassDict dict(20, core::select_hard_classes(val_profile.confusion, 10));
    std::printf("%-18s %14.2f\n", "10 hard",
                100.0 * detection_accuracy(test_profile, system.data.test, dict));
  }
  // 10 random.
  {
    util::Rng rng(77);
    const data::ClassDict dict(20, core::select_random_classes(20, 10, rng));
    std::printf("%-18s %14.2f\n", "10 random",
                100.0 * detection_accuracy(test_profile, system.data.test, dict));
  }
  // 14 hard (the paper's 70-of-100 row).
  {
    const data::ClassDict dict(20, core::select_hard_classes(val_profile.confusion, 14));
    std::printf("%-18s %14.2f\n", "14 hard",
                100.0 * detection_accuracy(test_profile, system.data.test, dict));
  }

  std::printf("\npaper reference: hard selection beats random; larger hard set\n");
  std::printf("detects better (83.5 / 81.8 / 86.9 %% for 50/50r/70 of 100).\n");
  std::printf("\n[table4] done in %.1f s\n", sw.seconds());
  return 0;
}
