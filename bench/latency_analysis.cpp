// Latency analysis (paper Fig. 8 discussion): "since more than 50% of
// data inference have terminated at the edge, edge-cloud distributed
// inference still has the advantage in latency" even when its energy
// approaches cloud-only. This bench quantifies that: per-instance
// latency distribution (mean / p50 / p95 / p99) for edge-only, several
// thresholds, and cloud-only, using the paper's device/WiFi constants.
#include <cstdio>

#include "common.h"
#include "sim/latency_model.h"
#include "util/stopwatch.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Latency analysis: distributed vs cloud-only inference ===\n");
  std::printf("(paper CIFAR constants: 69M-MAC edge model, 32x32x3 uploads,\n");
  std::printf(" 18.88 Mb/s WiFi, 20 ms RTT, 1 TMAC/s cloud device)\n\n");

  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});

  sim::LatencyParams params;
  params.edge_device = sim::DeviceModel::paper_cifar_gpu();
  params.upload_bytes = 32 * 32 * 3;
  params.main_macs = 69'000'000;
  params.extension_macs = 31'000'000;
  params.cloud_macs = 2'500'000'000;  // ResNet101-class cloud model
  params.cloud_macs_per_second = 1e12;
  params.rtt_s = 0.020;

  std::printf("%-12s %10s %10s %10s %10s %10s\n", "mode", "edge %", "mean ms", "p50 ms",
              "p95 ms", "p99 ms");

  auto report = [&](const char* name, const std::vector<core::InstanceDecision>& decisions) {
    const sim::LatencyStats stats = sim::analyze_latency(decisions, params);
    std::printf("%-12s %10.1f %10.3f %10.3f %10.3f %10.3f\n", name,
                100.0 * stats.edge_fraction, 1e3 * stats.mean_s, 1e3 * stats.p50_s,
                1e3 * stats.p95_s, 1e3 * stats.p99_s);
  };

  // Edge-only.
  {
    core::EdgeInferenceEngine engine(system.net, system.dict, core::PolicyConfig{});
    report("edge only", engine.infer_dataset(system.data.test));
  }
  // Distributed at several thresholds.
  for (const double threshold : {0.6, 0.4, 0.2}) {
    core::PolicyConfig policy;
    policy.cloud_available = true;
    policy.entropy_threshold = threshold;
    core::EdgeInferenceEngine engine(system.net, system.dict, policy);
    char name[32];
    std::snprintf(name, sizeof(name), "thre=%.1f", threshold);
    report(name, engine.infer_dataset(system.data.test));
  }
  // Cloud-only: every instance takes the cloud path.
  {
    core::PolicyConfig policy;
    policy.cloud_available = true;
    policy.entropy_threshold = -1.0;  // entropy > -1 always true
    core::EdgeInferenceEngine engine(system.net, system.dict, policy);
    report("cloud only", engine.infer_dataset(system.data.test));
  }

  std::printf("\nexpected shape: median latency stays at the edge-compute level for\n");
  std::printf("every distributed mode (most instances exit locally); only the tail\n");
  std::printf("(p95/p99) pays the upload + RTT, while cloud-only pays it everywhere.\n");
  std::printf("\n[latency_analysis] done in %.1f s\n", sw.seconds());
  return 0;
}
