// Ablation (paper §III-B): easy/hard detection via the main-block argmax
// rule (the paper's choice) vs a separately trained binary detector.
// The paper argues the argmax rule is "the simplest and the most
// effective way"; this bench quantifies the comparison, including the
// extra parameters/compute the detector would cost.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "core/hard_detector.h"
#include "nn/model_stats.h"
#include "util/stopwatch.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Ablation: IsHard via main-block argmax vs binary detector ===\n\n");

  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});

  // Argmax rule.
  const core::MainProfile test_profile = core::profile_main(system.net, system.data.test);
  std::int64_t argmax_correct = 0;
  for (int i = 0; i < system.data.test.size(); ++i) {
    const bool detected = system.dict.is_hard(test_profile.predictions[static_cast<std::size_t>(i)]);
    const bool truly = system.dict.is_hard(system.data.test.labels[static_cast<std::size_t>(i)]);
    if (detected == truly) ++argmax_correct;
  }
  const double argmax_acc =
      static_cast<double>(argmax_correct) / system.data.test.size();

  // Trained binary detector.
  util::Rng det_rng(21);
  core::BinaryHardDetector detector(3, det_rng);
  core::TrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 32;
  opts.milestones = {6, 8};
  util::Rng train_rng(22);
  detector.train(system.train, system.dict, opts, train_rng);
  const double detector_acc = detector.detection_accuracy(system.data.test, system.dict);

  const nn::LayerStats det_stats =
      detector.model().stats(system.data.test.instance_shape());

  std::printf("%-28s %14s %14s %14s\n", "method", "detection %", "extra params",
              "extra MACs");
  std::printf("%-28s %14.2f %14s %14s\n", "main-block argmax (paper)", 100.0 * argmax_acc, "0",
              "0");
  std::printf("%-28s %14.2f %14lld %14lld\n", "trained binary detector", 100.0 * detector_acc,
              static_cast<long long>(det_stats.params), static_cast<long long>(det_stats.macs));
  std::printf("\npaper claim: the argmax rule is the simplest and most effective —\n");
  std::printf("the detector must beat it by a clear margin to justify its cost.\n");
  std::printf("\n[ablation_hard_detector] done in %.1f s\n", sw.seconds());
  return 0;
}
