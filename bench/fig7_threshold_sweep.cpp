// Fig. 7 of the paper: distributed inference by edge and cloud —
// overall accuracy and percentage of data sent to the cloud as a
// function of the entropy threshold (threshold 0 sends everything).
// Paper shapes: accuracy falls and cloud traffic falls monotonically as
// the threshold rises; at low thresholds distributed accuracy
// approaches cloud-only accuracy.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void sweep(bench::EdgeModel model, bench::DatasetKind kind) {
  bench::TrainedSystem system = bench::train_system(model, kind, bench::default_num_hard(kind),
                                                    core::FusionMode::kSum, bench::TrainBudget{});
  nn::Sequential cloud_model = bench::train_cloud_model(system);
  sim::CloudNode cloud(std::move(cloud_model));

  const core::MainProfile cloud_profile =
      core::profile_classifier(cloud.model(), system.data.test);

  const Shape instance = system.data.test.instance_shape();
  const bench::EdgeMacs macs =
      bench::count_edge_macs(system.net, instance, core::FusionMode::kSum);
  sim::EdgeNodeCosts costs;
  costs.upload_bytes_per_instance = instance.numel();
  costs.main_macs = macs.main;
  costs.extension_macs = macs.extension;

  std::printf("%s, %s  (cloud-only accuracy: %.1f%%)\n", bench::edge_model_name(model),
              bench::dataset_name(kind), 100.0 * cloud_profile.accuracy);
  std::printf("%-10s %12s %14s\n", "threshold", "accuracy%", "sent-to-cloud%");
  // Thresholds span the validation entropy range of the scaled models
  // (mu_correct ~0.25, mu_wrong ~0.6 nats on 10-20 classes); the paper's
  // 0-3 range corresponds to 100-class softmax entropies.
  for (const double threshold :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0}) {
    core::PolicyConfig policy;
    policy.cloud_available = true;
    policy.entropy_threshold = threshold;
    sim::EdgeNode edge(system.net, system.dict, policy, costs);
    sim::DistributedSystem distributed(std::move(edge), &cloud);
    const sim::SystemReport report = distributed.run(system.data.test);
    std::printf("%-10.2f %12.2f %14.1f\n", threshold, 100.0 * report.accuracy,
                100.0 * report.cloud_fraction);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Fig. 7: accuracy & cloud traffic vs entropy threshold ===\n\n");
  sweep(bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike);
  sweep(bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike);
  sweep(bench::EdgeModel::kResNetB, bench::DatasetKind::kImageNetLike);
  std::printf("[fig7] done in %.1f s\n", sw.seconds());
  return 0;
}
