// Wire overhead ablation: what does the framed offload protocol cost
// over an in-process backend call?
//
// Isolates the wire mechanics with an instant echo backend (no model),
// so every microsecond measured is serialization + framing + transport,
// not inference:
//   - in_process:     direct OffloadBackend::classify call (the floor)
//   - encode_decode:  encode_offload_request + decode + response codec,
//                     no transport (pure serialization cost)
//   - pipe_rtt:       full WireBackend <-> WireServer round trip over
//                     the in-memory pipe (adds framing, CRC, threads)
//   - socket_rtt:     the same over a real Unix-domain socket (adds the
//                     kernel byte-stream)
// per offload batch size, and emits BENCH_wire.json as the tracked
// baseline for future wire-path PRs.
//
// Usage: ablation_wire [--quick] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "diag/value.h"
#include "nn/serialize.h"
#include "runtime/offload_backend.h"
#include "util/rng.h"
#include "wire/frame.h"
#include "wire/server.h"
#include "wire/socket_transport.h"
#include "wire/wire_backend.h"

using namespace meanet;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double median_us(int reps, Fn fn) {
  fn();  // warmup
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double start = now_s();
    fn();
    samples.push_back((now_s() - start) * 1e6);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Instant backend: answers each row with its index — zero inference
/// cost, so round-trip times are pure wire overhead.
class EchoBackend : public runtime::OffloadBackend {
 public:
  std::vector<int> classify(const runtime::OffloadPayload& payload) override {
    const std::int64_t rows = payload.images.shape().dim(0);
    std::vector<int> out(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) out[static_cast<std::size_t>(r)] = static_cast<int>(r);
    return out;
  }
  bool needs_images() const override { return true; }
  std::int64_t payload_bytes(const Shape&, const Shape&) const override { return 0; }
  std::string describe() const override { return "echo"; }
};

struct Row {
  int batch = 0;
  std::int64_t wire_bytes = 0;
  double in_process_us = 0.0;
  double encode_decode_us = 0.0;
  double pipe_rtt_us = 0.0;
  double socket_rtt_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_wire.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: ablation_wire [--quick] [--out PATH]\n");
      return 2;
    }
  }
  const int reps = quick ? 31 : 201;

  std::printf("=== ablation_wire: framed offload vs in-process call (%s) ===\n",
              quick ? "quick" : "full");

  // CIFAR-like offload geometry: [K, 3, 16, 16] image batches.
  const int channels = 3, side = 16;
  auto backend = std::make_shared<EchoBackend>();

  // One server serving both transports for the whole run.
  wire::WireServerConfig server_config;
  server_config.max_batch_instances = 1;  // serve each request immediately
  wire::WireServer server(backend, server_config);
  const std::string socket_path =
      "/tmp/meanet_ablation_wire_" + std::to_string(::getpid()) + ".sock";
  server.listen_unix(socket_path);

  wire::WireBackendConfig pipe_config;
  pipe_config.transport_factory = [&server] {
    wire::PipePair pipe = wire::make_pipe();
    server.adopt(std::move(pipe.second));
    return std::move(pipe.first);
  };
  wire::WireBackend pipe_client(pipe_config);

  wire::WireBackendConfig socket_config;
  socket_config.socket_path = socket_path;
  wire::WireBackend socket_client(socket_config);

  std::vector<Row> rows;
  for (const int batch : {1, 16, 64}) {
    util::Rng rng(7);
    runtime::OffloadPayload payload;
    payload.images = Tensor::normal(Shape{batch, channels, side, side}, rng);

    Row row;
    row.batch = batch;
    row.wire_bytes = static_cast<std::int64_t>(wire::kFrameHeaderBytes) + 4 +
                     nn::tensor_wire_bytes(payload.images.shape());
    row.in_process_us = median_us(reps, [&] { (void)backend->classify(payload); });
    row.encode_decode_us = median_us(reps, [&] {
      const auto request = wire::encode_offload_request(payload);
      const auto decoded = wire::decode_offload_request(request);
      const auto response = wire::encode_offload_response(backend->classify(decoded));
      (void)wire::decode_offload_response(response);
    });
    row.pipe_rtt_us = median_us(reps, [&] { (void)pipe_client.classify(payload); });
    row.socket_rtt_us = median_us(reps, [&] { (void)socket_client.classify(payload); });
    rows.push_back(row);
    std::printf("  batch %3d (%7lld wire bytes): in-proc %8.2f us   codec %8.2f us   "
                "pipe rtt %8.2f us   socket rtt %8.2f us\n",
                batch, static_cast<long long>(row.wire_bytes), row.in_process_us,
                row.encode_decode_us, row.pipe_rtt_us, row.socket_rtt_us);
  }
  server.stop();
  ::unlink(socket_path.c_str());

  // Emit through the shared diag JSON exporter so the bench baselines
  // and the diagnostics registry share one serializer (and schema tag).
  diag::Value doc = diag::Value::object();
  doc.set("schema", diag::kSchemaVersion);
  doc.set("bench", "ablation_wire");
  doc.set("quick", quick);
  diag::Value results = diag::Value::array();
  for (const Row& r : rows) {
    diag::Value entry = diag::Value::object();
    entry.set("batch", r.batch);
    entry.set("wire_bytes", r.wire_bytes);
    entry.set("in_process_us", r.in_process_us);
    entry.set("encode_decode_us", r.encode_decode_us);
    entry.set("pipe_rtt_us", r.pipe_rtt_us);
    entry.set("socket_rtt_us", r.socket_rtt_us);
    results.push(std::move(entry));
  }
  doc.set("results", std::move(results));
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string json = diag::to_json(doc);
  std::fprintf(out, "%s\n", json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // Sanity gate: the socket round trip must stay within a factor of the
  // codec cost plus a fixed syscall allowance — a regression that makes
  // the wire pathologically slow should fail loudly in CI.
  for (const Row& r : rows) {
    if (r.socket_rtt_us > 50.0 * (r.encode_decode_us + 50.0)) {
      std::fprintf(stderr, "wire overhead blew up at batch %d: %.2f us\n", r.batch,
                   r.socket_rtt_us);
      return 1;
    }
  }
  return 0;
}
