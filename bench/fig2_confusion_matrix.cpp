// Fig. 2 of the paper: confusion matrix of a ResNet32 on CIFAR-10,
// demonstrating that per-class precision varies widely (class-wise
// complexity). Here: a scaled ResNet on a 10-class synthetic dataset.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Fig. 2: confusion matrix / class-wise complexity ===\n");
  std::printf("(paper: ResNet32 on CIFAR-10; here: scaled ResNet on a 10-class\n");
  std::printf(" synthetic set with per-class confuser mixing, DESIGN.md §1)\n\n");

  data::SyntheticSpec spec = bench::spec_for(bench::DatasetKind::kCifarLike);
  spec.num_classes = 10;
  spec.train_per_class = 120;
  spec.test_per_class = 40;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 2024);

  util::Rng rng(7);
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.channels = {8, 16, 32};
  config.num_classes = 10;
  nn::Sequential net = core::build_resnet_classifier(config, rng);

  core::TrainOptions opts;
  opts.epochs = 12;
  opts.batch_size = 32;
  opts.sgd.learning_rate = 0.1f;
  opts.milestones = {7, 10};
  util::Rng train_rng(8);
  core::train_classifier(net, ds.train, opts, train_rng);

  const core::MainProfile profile = core::profile_classifier(net, ds.test);
  std::printf("%s\n", profile.confusion.to_string().c_str());
  std::printf("overall accuracy: %.2f%%\n\n", 100.0 * profile.accuracy);

  // The Fig. 2 takeaway: precision spread across classes.
  const std::vector<double> precision = profile.confusion.per_class_precision();
  double lo = 1.0, hi = 0.0;
  for (double p : precision) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  std::printf("per-class precision spread: min %.1f%%, max %.1f%% "
              "(paper's premise: some classes are notably harder)\n",
              100.0 * lo, 100.0 * hi);
  std::printf("\n[fig2] done in %.1f s\n", sw.seconds());
  return 0;
}
