// Ablation (related work the paper cites as complementary, [7]/[43]):
// post-training weight quantization of the deployed edge MEANet.
// Sweeps the bit width and reports routed edge-only accuracy — showing
// how much precision the complexity-aware edge can shed before the
// routing quality degrades.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "core/edge_inference.h"
#include "metrics/classification_metrics.h"
#include "nn/quantize.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

double routed_accuracy(bench::TrainedSystem& system) {
  core::EdgeInferenceEngine engine(system.net, system.dict, core::PolicyConfig{});
  const auto decisions = engine.infer_dataset(system.data.test);
  std::vector<int> preds;
  preds.reserve(decisions.size());
  for (const auto& d : decisions) preds.push_back(d.prediction);
  return metrics::accuracy(preds, system.data.test.labels);
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Ablation: weight quantization of the deployed edge MEANet ===\n\n");
  std::printf("%-10s %12s %16s %16s\n", "bits", "accuracy%", "mean |dW|", "max |dW|");

  // Full-precision reference (fresh trained system per row: quantization
  // mutates weights in place).
  for (const int bits : {32, 8, 6, 4, 3, 2}) {
    bench::TrainedSystem system = bench::train_system(
        bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
        bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
        bench::TrainBudget{});
    float mean_err = 0.0f, max_err = 0.0f;
    if (bits < 32) {
      nn::QuantizationReport total;
      for (nn::Sequential* block : {&system.net.main_trunk(), &system.net.main_exit(),
                                    &system.net.adaptive(), &system.net.extension()}) {
        const nn::QuantizationReport r = nn::quantize_weights(*block, bits);
        total.mean_abs_error += r.mean_abs_error * static_cast<float>(r.quantized_params);
        total.quantized_params += r.quantized_params;
        total.max_abs_error = std::max(total.max_abs_error, r.max_abs_error);
      }
      mean_err = total.mean_abs_error / static_cast<float>(total.quantized_params);
      max_err = total.max_abs_error;
    }
    std::printf("%-10d %12.2f %16.5f %16.5f\n", bits, 100.0 * routed_accuracy(system),
                mean_err, max_err);
  }
  std::printf("\nexpected shape: 8-6 bits are near-lossless; accuracy degrades\n");
  std::printf("gracefully to ~4 bits and collapses below.\n");
  std::printf("\n[ablation_quantization] done in %.1f s\n", sw.seconds());
  return 0;
}
