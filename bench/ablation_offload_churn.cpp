// Ablation: the cloud link under churn. The paper's Alg. 2 assumes the
// cloud answers instantly; here the same serving configuration is run
// against a raw-image backend wrapped in decorator chains that inject
// round-trip latency, drop uploads, and retry — with a finite offload
// timeout, so slow answers fall back to the edge prediction exactly
// like an unreachable cloud (NullBackend). Reports routed accuracy,
// offload completion, timeout counts, and the cloud route's served
// latency percentiles from session.metrics().
#include <cstdio>
#include <limits>
#include <memory>

#include "common.h"
#include "runtime/backend_decorators.h"
#include "runtime/session.h"
#include "sim/cloud_node.h"
#include "util/stopwatch.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Ablation: offload under churn (latency / loss / retry decorators) ===\n\n");

  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});
  const data::Dataset& test = system.data.test;

  nn::Sequential cloud_model = bench::train_cloud_model(system);
  sim::CloudNode cloud(std::move(cloud_model));
  const auto raw = std::make_shared<runtime::RawImageBackend>(&cloud);

  struct Scenario {
    const char* name;
    std::shared_ptr<runtime::OffloadBackend> backend;
    double timeout_s;
  };
  const double kInf = std::numeric_limits<double>::infinity();
  const Scenario scenarios[] = {
      {"ideal link (baseline)", raw, kInf},
      {"2ms RTT, no timeout",
       std::make_shared<runtime::LatencyInjectingBackend>(raw, 0.002), kInf},
      {"40ms RTT, 5ms timeout",
       std::make_shared<runtime::LatencyInjectingBackend>(raw, 0.040), 0.005},
      {"30% loss",
       std::make_shared<runtime::LossyBackend>(raw, 0.3), kInf},
      {"30% loss, 5 retries",
       std::make_shared<runtime::RetryingBackend>(
           std::make_shared<runtime::LossyBackend>(raw, 0.3), 5), kInf},
      {"cloud down (null)", std::make_shared<runtime::NullBackend>(), kInf},
  };

  std::printf("%-24s %8s %9s %9s %9s %12s %12s\n", "link", "acc%", "offload%", "timeout",
              "dropped", "cloud p50ms", "cloud p95ms");
  for (const Scenario& s : scenarios) {
    runtime::EngineConfig cfg;
    cfg.net = &system.net;
    cfg.dict = &system.dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.6;
    cfg.backend = s.backend;
    cfg.offload_timeout_s = s.timeout_s;
    runtime::InferenceSession session(cfg);
    const auto results = session.run(test);

    std::int64_t correct = 0, cloud_routed = 0, answered = 0;
    for (const auto& r : results) {
      if (r.prediction == test.labels[static_cast<std::size_t>(r.id)]) ++correct;
      if (r.route == core::Route::kCloud) {
        ++cloud_routed;
        if (r.offloaded) ++answered;
      }
    }
    const runtime::SessionMetrics m = session.metrics();
    const runtime::RouteLatencyStats& cloud_lat = m.route(core::Route::kCloud);
    const std::int64_t dropped = cloud_routed - answered - m.offload_timeouts;
    std::printf("%-24s %8.2f %9.1f %9lld %9lld %12.3f %12.3f\n", s.name,
                100.0 * static_cast<double>(correct) / test.size(),
                cloud_routed == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(answered) / static_cast<double>(cloud_routed),
                static_cast<long long>(m.offload_timeouts), static_cast<long long>(dropped),
                1e3 * cloud_lat.p50_s, 1e3 * cloud_lat.p95_s);
  }

  std::printf("\nreading: a slow link behind a tight timeout degrades to the\n");
  std::printf("edge-only (null backend) accuracy instead of stalling the workers;\n");
  std::printf("retries buy back the accuracy a lossy link drops, priced purely in\n");
  std::printf("cloud-route latency.\n");
  std::printf("\n[ablation_offload_churn] done in %.1f s\n", sw.seconds());
  return 0;
}
