// Ablation: the cloud link under churn. The paper's Alg. 2 assumes the
// cloud answers instantly; here the same serving configuration is run
// against links that misbehave in every way the runtime models:
// decorator chains that inject round-trip latency, drop uploads, and
// retry; a WiFi-timed transport whose upload time scales with the
// payload's byte size (paper §IV-B, with seeded jitter); finite offload
// timeouts; and per-route deadlines that bound a request's end-to-end
// completion. Slow answers fall back to the edge prediction exactly
// like an unreachable cloud (NullBackend), so accuracy degrades to
// edge-only parity and never below. Reports routed accuracy, offload
// completion, timeout/expiry counts, and the cloud route's end-to-end
// latency percentiles from session.metrics().
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>

#include "common.h"
#include "runtime/backend_decorators.h"
#include "runtime/session.h"
#include "runtime/transport.h"
#include "sim/cloud_node.h"
#include "util/stopwatch.h"

using namespace meanet;

int main() {
  util::Stopwatch sw;
  std::printf("=== Ablation: offload under churn (latency / loss / WiFi / deadlines) ===\n\n");

  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});
  const data::Dataset& test = system.data.test;

  nn::Sequential cloud_model = bench::train_cloud_model(system);
  sim::CloudNode cloud(std::move(cloud_model));
  const auto raw = std::make_shared<runtime::RawImageBackend>(&cloud);

  // WiFi transports: the paper's 18.88 Mb/s cell, and the same cell
  // congested 20x (≈0.94 Mb/s — a 16x16x3 frame upload takes ~6.5ms).
  runtime::TransportConfig paper_wifi;
  runtime::TransportConfig congested_wifi;
  congested_wifi.wifi = congested_wifi.wifi.congested(20.0);
  congested_wifi.jitter_s = 0.004;
  congested_wifi.seed = 0x51F1;

  struct Scenario {
    const char* name;
    std::shared_ptr<runtime::OffloadBackend> backend;
    double timeout_s;
    std::optional<runtime::TransportConfig> transport;
    double cloud_deadline_s;
  };
  const double kInf = std::numeric_limits<double>::infinity();
  const Scenario scenarios[] = {
      {"ideal link (baseline)", raw, kInf, std::nullopt, kInf},
      {"2ms RTT, no timeout",
       std::make_shared<runtime::LatencyInjectingBackend>(raw, 0.002), kInf, std::nullopt, kInf},
      {"40ms RTT, 5ms timeout",
       std::make_shared<runtime::LatencyInjectingBackend>(raw, 0.040), 0.005, std::nullopt,
       kInf},
      {"30% loss",
       std::make_shared<runtime::LossyBackend>(raw, 0.3), kInf, std::nullopt, kInf},
      {"30% loss, 5 retries",
       std::make_shared<runtime::RetryingBackend>(
           std::make_shared<runtime::LossyBackend>(raw, 0.3), 5), kInf, std::nullopt, kInf},
      {"wifi 18.88Mb/s (paper)", raw, kInf, paper_wifi, kInf},
      {"wifi /20 + jitter", raw, kInf, congested_wifi, kInf},
      {"wifi /20, 25ms deadline", raw, kInf, congested_wifi, 0.025},
      {"cloud down (null)", std::make_shared<runtime::NullBackend>(), kInf, std::nullopt, kInf},
  };

  std::printf("%-24s %8s %9s %9s %9s %9s %12s %12s\n", "link", "acc%", "offload%", "timeout",
              "expired", "dropped", "cloud p50ms", "cloud p99ms");
  for (const Scenario& s : scenarios) {
    runtime::EngineConfig cfg;
    cfg.net = &system.net;
    cfg.dict = &system.dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.6;
    cfg.backend = s.backend;
    cfg.offload_timeout_s = s.timeout_s;
    cfg.transport = s.transport;
    cfg.route_deadline_s[static_cast<std::size_t>(core::Route::kCloud)] = s.cloud_deadline_s;
    runtime::InferenceSession session(cfg);
    const auto results = session.run(test);

    std::int64_t correct = 0, cloud_routed = 0, answered = 0;
    for (const auto& r : results) {
      if (r.prediction == test.labels[static_cast<std::size_t>(r.id)]) ++correct;
      if (r.route == core::Route::kCloud) {
        ++cloud_routed;
        if (r.offloaded) ++answered;
      }
    }
    const runtime::SessionMetrics m = session.metrics();
    const runtime::RouteLatencyStats& cloud_lat = m.route(core::Route::kCloud);
    const std::int64_t dropped =
        cloud_routed - answered - m.offload_timeouts - m.deadline_expirations;
    std::printf("%-24s %8.2f %9.1f %9lld %9lld %9lld %12.3f %12.3f\n", s.name,
                100.0 * static_cast<double>(correct) / test.size(),
                cloud_routed == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(answered) / static_cast<double>(cloud_routed),
                static_cast<long long>(m.offload_timeouts),
                static_cast<long long>(m.deadline_expirations),
                static_cast<long long>(dropped < 0 ? 0 : dropped),
                1e3 * cloud_lat.p50_s, 1e3 * cloud_lat.p99_s);
  }

  std::printf("\nreading: a slow link behind a tight timeout or deadline degrades to\n");
  std::printf("the edge-only (null backend) accuracy instead of stalling the workers;\n");
  std::printf("retries buy back the accuracy a lossy link drops, priced purely in\n");
  std::printf("cloud-route latency. On the WiFi-timed link the upload time scales\n");
  std::printf("with payload bytes, so the congested cell inflates the cloud tail —\n");
  std::printf("and the 25ms deadline caps that tail at edge-parity accuracy.\n");
  std::printf("\n[ablation_offload_churn] done in %.1f s\n", sw.seconds());
  return 0;
}
