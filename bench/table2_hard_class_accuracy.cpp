// Table II of the paper: accuracy on hard classes, main block alone vs
// full MEANet (extension + adaptive always activated, confidence
// comparison between the two exits), on train and test data restricted
// to hard classes. Paper: MEANet gains 4-9 points (CIFAR) / 4-5 points
// (ImageNet) on hard-class test accuracy.
// Also includes the sum-vs-concat fusion ablation called out in
// DESIGN.md §4.
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "metrics/classification_metrics.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void run(bench::EdgeModel model, bench::DatasetKind kind, core::FusionMode fusion,
         const char* suffix = "") {
  bench::TrainedSystem system =
      bench::train_system(model, kind, bench::default_num_hard(kind), fusion,
                          bench::TrainBudget{});

  const data::Dataset hard_train =
      data::filter_by_labels(system.train, system.dict.hard_classes());
  const data::Dataset hard_test =
      data::filter_by_labels(system.data.test, system.dict.hard_classes());

  auto accuracy_pair = [&](const data::Dataset& ds) {
    const core::MainProfile main_profile = core::profile_main(system.net, ds);
    const std::vector<int> meanet_preds =
        bench::meanet_predictions_always_extended(system.net, ds, system.dict);
    return std::pair<double, double>{main_profile.accuracy,
                                     metrics::accuracy(meanet_preds, ds.labels)};
  };
  const auto [train_main, train_meanet] = accuracy_pair(hard_train);
  const auto [test_main, test_meanet] = accuracy_pair(hard_test);

  std::printf("%-16s %-14s%-9s %10.2f %10.2f %10.2f %10.2f\n", bench::dataset_name(kind),
              bench::edge_model_name(model), suffix, 100.0 * train_main, 100.0 * train_meanet,
              100.0 * test_main, 100.0 * test_meanet);
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Table II: accuracy of hard classes (%%), main vs MEANet ===\n\n");
  std::printf("%-16s %-23s %10s %10s %10s %10s\n", "dataset", "model", "train-main",
              "train-MEA", "test-main", "test-MEA");
  run(bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike, core::FusionMode::kSum);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike, core::FusionMode::kSum);
  run(bench::EdgeModel::kMobileNetB, bench::DatasetKind::kImageNetLike, core::FusionMode::kSum);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kImageNetLike, core::FusionMode::kSum);
  std::printf("\nfusion ablation (DESIGN.md §4):\n");
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike, core::FusionMode::kConcat,
      " (concat)");
  std::printf("\npaper reference: test gain +4-9 (CIFAR-100), +4-5 (ImageNet); model A\n");
  std::printf("gains more than model B because its main block is shallower.\n");
  std::printf("\n[table2] done in %.1f s\n", sw.seconds());
  return 0;
}
