// Fig. 5 of the paper: the proportion of the four main-block error
// types (easy-as-hard / hard-as-easy / easy-as-easy / hard-as-hard)
// with half the classes marked hard, on both dataset families.
// Paper reports type IV (hard-as-hard) as the biggest bucket: 45%
// (CIFAR-100) and 54% (ImageNet).
#include <cstdio>

#include "common.h"
#include "core/complexity.h"
#include "metrics/classification_metrics.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void run(bench::DatasetKind kind) {
  bench::TrainBudget budget;
  budget.edge_epochs = 1;  // only the main block matters here
  const bench::TrainedSystem system =
      bench::train_system(bench::EdgeModel::kResNetB, kind, bench::default_num_hard(kind),
                          core::FusionMode::kSum, budget);
  core::MEANet& net = const_cast<core::MEANet&>(system.net);
  const core::MainProfile profile = core::profile_main(net, system.data.test);

  std::vector<bool> is_hard(static_cast<std::size_t>(system.data.test.num_classes), false);
  for (int c : system.dict.hard_classes()) is_hard[static_cast<std::size_t>(c)] = true;
  const metrics::ErrorTypeBreakdown b =
      metrics::error_types(profile.predictions, system.data.test.labels, is_hard);

  std::printf("%s (main-block test accuracy %.1f%%, %lld errors):\n",
              bench::dataset_name(kind), 100.0 * profile.accuracy,
              static_cast<long long>(b.total_errors()));
  std::printf("  (I)   easy as hard : %5.1f%%\n", 100.0 * b.fraction(b.easy_as_hard));
  std::printf("  (II)  hard as easy : %5.1f%%\n", 100.0 * b.fraction(b.hard_as_easy));
  std::printf("  (III) easy as easy : %5.1f%%\n", 100.0 * b.fraction(b.easy_as_easy));
  std::printf("  (IV)  hard as hard : %5.1f%%  <- the extension block's target\n",
              100.0 * b.fraction(b.hard_as_hard));
  std::printf("  paper reference: IV = 45%% (CIFAR-100), 54%% (ImageNet)\n\n");
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Fig. 5: proportions of the four error types ===\n\n");
  run(bench::DatasetKind::kCifarLike);
  run(bench::DatasetKind::kImageNetLike);
  std::printf("[fig5] done in %.1f s\n", sw.seconds());
  return 0;
}
