// Google-benchmark microbenchmarks of the numeric substrate: GEMM,
// convolution forward/backward, batch-norm, residual blocks and the
// full edge inference path. These bound the simulated-device throughput
// constants used by the cost models.
#include <benchmark/benchmark.h>

#include "common.h"
#include "core/edge_inference.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/residual_block.h"
#include "tensor/ops.h"

using namespace meanet;

namespace {

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2d conv(16, 32, 3, 1, 1, false, rng);
  const Tensor x = Tensor::normal(Shape{8, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, nn::Mode::kEval);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  util::Rng rng(3);
  nn::Conv2d conv(16, 32, 3, 1, 1, false, rng);
  const Tensor x = Tensor::normal(Shape{8, 16, 16, 16}, rng);
  const Tensor y = conv.forward(x, nn::Mode::kTrain);
  const Tensor g = Tensor::normal(y.shape(), rng);
  for (auto _ : state) {
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_BatchNormForward(benchmark::State& state) {
  util::Rng rng(4);
  nn::BatchNorm2d bn(32);
  const Tensor x = Tensor::normal(Shape{16, 32, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = bn.forward(x, nn::Mode::kTrain);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_ResidualBlockForward(benchmark::State& state) {
  util::Rng rng(5);
  nn::ResidualBlock block(16, 16, 1, rng);
  const Tensor x = Tensor::normal(Shape{8, 16, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = block.forward(x, nn::Mode::kEval);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ResidualBlockForward);

void BM_EdgeInference(benchmark::State& state) {
  util::Rng rng(6);
  core::MEANet net = bench::build_edge_model(bench::EdgeModel::kResNetB,
                                             bench::DatasetKind::kCifarLike, 10,
                                             core::FusionMode::kSum, rng);
  const data::ClassDict dict(20, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  core::EdgeInferenceEngine engine(net, dict, core::PolicyConfig{});
  const Tensor images = Tensor::normal(Shape{16, 3, 16, 16}, rng);
  for (auto _ : state) {
    auto decisions = engine.infer(images);
    benchmark::DoNotOptimize(decisions.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_EdgeInference);

void BM_SoftmaxEntropy(benchmark::State& state) {
  util::Rng rng(7);
  const Tensor logits = Tensor::normal(Shape{64, 100}, rng);
  for (auto _ : state) {
    const Tensor p = ops::softmax(logits);
    auto h = ops::row_entropy(p);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_SoftmaxEntropy);

}  // namespace

BENCHMARK_MAIN();
