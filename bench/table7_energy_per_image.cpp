// Table VII of the paper: per-image computation and communication
// power / time / energy at the edge. The first two rows evaluate the
// cost models at the paper's own constants (GTX-1080Ti power, WiFi
// power model, CIFAR/ImageNet image and model sizes) and should match
// the published numbers; the remaining rows price this repo's scaled
// synthetic models on an edge-class device.
#include <cstdio>

#include "common.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void print_row(const char* name, const sim::DeviceModel& device, const sim::WifiModel& wifi,
               std::int64_t macs, std::int64_t upload_bytes) {
  const double tcp_ms = device.compute_time_s(macs) * 1e3;
  const double tcu_ms = wifi.upload_time_s(upload_bytes) * 1e3;
  const double ecp_mj = device.compute_energy_j(macs) * 1e3;
  const double ecu_mj = wifi.upload_energy_j(upload_bytes) * 1e3;
  std::printf("%-34s %8.1f %8.2f %9.3f %8.1f %9.2f %9.1f\n", name, device.compute_power_w,
              wifi.upload_power_w(), tcp_ms, tcu_ms, ecp_mj, ecu_mj);
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Table VII: per-image power, time and energy at the edge ===\n\n");
  std::printf("%-34s %8s %8s %9s %8s %9s %9s\n", "configuration", "GPU W", "WiFi W", "tcp ms",
              "tcu ms", "Ecp mJ", "Ecu mJ");

  const sim::WifiModel wifi;

  // Paper rows (constants from the paper; expected: 0.056/1.3 ms and
  // 3.14/7.12 mJ for CIFAR; 0.203/63.7 ms and 15.23/349 mJ for ImageNet).
  print_row("paper CIFAR-100, ResNet32 A", sim::DeviceModel::paper_cifar_gpu(), wifi, 69'000'000,
            32 * 32 * 3);
  print_row("paper ImageNet, ResNet18 B", sim::DeviceModel::paper_imagenet_gpu(), wifi,
            1'722'000'000, 224 * 224 * 3);

  // Synthetic-model rows: a 5 GMAC/s, 5 W edge-class accelerator.
  sim::DeviceModel edge_device;
  edge_device.compute_power_w = 5.0;
  edge_device.macs_per_second = 5e9;
  for (const auto& [model, kind, label] :
       {std::tuple{bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike,
                   "synthetic CIFAR-like, ResNet A"},
        std::tuple{bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
                   "synthetic CIFAR-like, ResNet B"},
        std::tuple{bench::EdgeModel::kResNetB, bench::DatasetKind::kImageNetLike,
                   "synthetic ImageNet-like, ResNet B"},
        std::tuple{bench::EdgeModel::kMobileNetB, bench::DatasetKind::kImageNetLike,
                   "synthetic ImageNet-like, MNetV2 B"}}) {
    util::Rng rng(3);
    core::MEANet net =
        bench::build_edge_model(model, kind, bench::default_num_hard(kind),
                                core::FusionMode::kSum, rng);
    const data::SyntheticSpec spec = bench::spec_for(kind);
    const Shape image{1, spec.channels, spec.height, spec.width};
    const bench::EdgeMacs macs = bench::count_edge_macs(net, image, core::FusionMode::kSum);
    print_row(label, edge_device, wifi, macs.main, image.numel());
  }

  std::printf("\n[table7] done in %.1f s\n", sw.seconds());
  return 0;
}
