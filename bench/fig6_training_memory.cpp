// Fig. 6 of the paper: training-memory comparison (batch 128) between
// the paper's blockwise edge training (frozen main; only extension +
// adaptive trained) and joint optimization of all exits. Paper numbers:
// blockwise uses ~60% less memory for ResNets and ~30% less for
// MobileNets. Memory here is the analytic accounting of
// nn::TrainingMemoryModel (DESIGN.md §1).
#include <cstdio>

#include "common.h"
#include "nn/training_memory.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

void run(bench::EdgeModel model, bench::DatasetKind kind) {
  util::Rng rng(5);
  const int num_hard = bench::default_num_hard(kind);
  core::MEANet net = bench::build_edge_model(model, kind, num_hard, core::FusionMode::kSum, rng);
  const data::SyntheticSpec spec = bench::spec_for(kind);
  const Shape image{1, spec.channels, spec.height, spec.width};
  const Shape feature = net.main_trunk().output_shape(image);

  const int batch = 128;
  const std::vector<nn::MemorySegment> ours{
      {&net.main_trunk(), image, /*trained=*/false},
      {&net.main_exit(), feature, /*trained=*/false},
      {&net.adaptive(), image, /*trained=*/true},
      {&net.extension(), feature, /*trained=*/true},
  };
  const std::vector<nn::MemorySegment> joint{
      {&net.main_trunk(), image, true},
      {&net.main_exit(), feature, true},
      {&net.adaptive(), image, true},
      {&net.extension(), feature, true},
  };
  const nn::MemoryBreakdown m_ours = nn::estimate_training_memory(ours, batch);
  const nn::MemoryBreakdown m_joint = nn::estimate_training_memory(joint, batch);
  const double saving = 100.0 * (1.0 - m_ours.total() / static_cast<double>(m_joint.total()));
  std::printf("%-16s %-16s %10.2f %10.2f %9.0f%%\n", bench::dataset_name(kind),
              bench::edge_model_name(model), m_ours.total_mib(), m_joint.total_mib(), saving);
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Fig. 6: training memory, ours (blockwise) vs joint optimization ===\n");
  std::printf("batch size 128; analytic accounting (params + grads + momentum +\n");
  std::printf("activation caches of trained blocks)\n\n");
  std::printf("%-16s %-16s %10s %10s %10s\n", "dataset", "model", "ours MiB", "joint MiB",
              "saving");
  run(bench::EdgeModel::kResNetA, bench::DatasetKind::kCifarLike);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike);
  run(bench::EdgeModel::kResNetB, bench::DatasetKind::kImageNetLike);
  run(bench::EdgeModel::kMobileNetB, bench::DatasetKind::kImageNetLike);
  std::printf("\npaper reference: ~60%% less for ResNets, ~30%% less for MobileNets\n");
  std::printf("\n[fig6] done in %.1f s\n", sw.seconds());
  return 0;
}
