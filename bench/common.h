// Shared experiment scaffolding for the table/figure benches: builds and
// trains the edge systems and cloud models on the synthetic workloads
// (DESIGN.md §1 documents how these substitute the paper's setups).
#pragma once

#include <string>

#include "core/builders.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/system.h"

namespace meanet::bench {

enum class EdgeModel {
  kResNetA,     // paper: ResNet32 A (split trunk)
  kResNetB,     // paper: ResNet32 B / ResNet18 B (full trunk + extension)
  kMobileNetB,  // paper: MobileNetV2 B
};

enum class DatasetKind {
  kCifarLike,     // 20 classes, 16x16x3 (paper: CIFAR-100)
  kImageNetLike,  // 10 classes, 24x24x3 (paper: ImageNet)
};

const char* edge_model_name(EdgeModel model);
const char* dataset_name(DatasetKind kind);

data::SyntheticSpec spec_for(DatasetKind kind);

/// Default hard-class count: half of all classes (the paper's default).
int default_num_hard(DatasetKind kind);

core::MEANet build_edge_model(EdgeModel model, DatasetKind kind, int num_hard,
                              core::FusionMode fusion, util::Rng& rng);

/// A fully trained edge-cloud-ready system (Alg. 1 executed end to end).
struct TrainedSystem {
  data::SyntheticDataset data;
  data::Dataset train;       // 90% of generated training data
  data::Dataset validation;  // 10% held out for hard-class selection
  core::MEANet net;
  data::ClassDict dict;
  core::TrainCurve main_curve;
  core::TrainCurve edge_curve;
};

struct TrainBudget {
  int main_epochs = 10;
  int edge_epochs = 10;
  int batch_size = 32;
};

/// Runs Alg. 1: train main on train split, pick hard classes on the
/// validation split, blockwise-train the extension + adaptive blocks.
///
/// Trained weights and the hard-class dictionary are cached on disk
/// under ./meanet_bench_cache keyed by the full configuration, so
/// benches sharing a system configuration load it instead of retraining
/// (the serialized weights reproduce training bit-exactly). Delete the
/// cache directory to force retraining.
TrainedSystem train_system(EdgeModel model, DatasetKind kind, int num_hard,
                           core::FusionMode fusion, const TrainBudget& budget,
                           std::uint64_t seed = 1234);

/// Trains the deeper cloud classifier on the same training split (also
/// disk-cached, keyed by dataset geometry + epochs + seed).
nn::Sequential train_cloud_model(const TrainedSystem& system, int epochs = 18,
                                 std::uint64_t seed = 99);

/// Per-image MAC counts of the deployed edge model, for the cost models.
struct EdgeMacs {
  std::int64_t main = 0;       // trunk + exit 1
  std::int64_t extension = 0;  // adaptive + extension (when activated)
};
EdgeMacs count_edge_macs(const core::MEANet& net, const Shape& instance_shape,
                         core::FusionMode fusion);

/// Confidence-comparison prediction with the extension always activated
/// (the evaluation mode of the paper's Tables II/V).
std::vector<int> meanet_predictions_always_extended(core::MEANet& net,
                                                    const data::Dataset& dataset,
                                                    const data::ClassDict& dict,
                                                    int batch_size = 64);

}  // namespace meanet::bench
