// Ablation: priority-scheduled serving under a saturated shared cell.
//
// Two sessions share one sim::SharedCell: a "camera" serving a seeded
// 90/10 mix of high- and low-priority requests through a single worker,
// and a background "neighbor" hammering uploads so the cell stays
// saturated (every transfer pays the 2-station fair-share penalty). The
// camera's queue backs up behind the slow cloud round-trips, which is
// exactly where the scheduler earns its keep: high-priority requests
// jump the queue, low-priority ones ride the starvation bound.
//
// Reported per starvation-bound setting: per-priority queue-wait
// percentiles and measured end-to-end p50/p99 per class, starvation
// promotions, cell airtime utilization, and a determinism check (the
// settle order and simulated transfer timings of two same-seed runs
// must match exactly). Exits nonzero if the high-priority class does
// not beat the low-priority class at p99 under the aged scheduler, or
// if the same-seed runs diverge.
//
// Usage: ablation_cell_contention [--virtual] [--quick] [--out PATH]
//
// --virtual runs every scenario on a sim::VirtualClock: the cell's
// airtime, the queue waits and the e2e latencies become scheduled
// events, so minutes of saturated-cell traffic replay in wall
// milliseconds and the determinism check is exact by construction.
// The emitted JSON (default BENCH_contention.json) records both the
// simulated span and the wall cost, so CI tracks the speedup.
//
// --quick trains the system for a single epoch. Every claim this
// ablation checks is about scheduling and simulated airtime — the
// entropy threshold of 0 routes every frame to the cloud regardless of
// model quality — so the CI leg skips the full training budget.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "diag/value.h"
#include "runtime/session.h"
#include "runtime/transport.h"
#include "sim/cloud_node.h"
#include "sim/event_loop.h"
#include "sim/shared_cell.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

struct ClassTally {
  std::vector<double> e2e_s;
  double p(double q) const { return runtime::percentile(e2e_s, q); }
};

struct RunOutcome {
  ClassTally high, low;
  std::vector<int> settle_order;        // request tags in settle order
  std::vector<double> upload_timings;   // per settled request, simulated upload s
  runtime::SessionMetrics metrics;
  double simulated_s = 0.0;  // burst start -> drain on the scenario clock
  double wall_s = 0.0;
};

constexpr int kHighPriority = 10;
constexpr int kRequests = 200;  // 90% high / 10% low, seeded

RunOutcome run_once(bench::TrainedSystem& system,
                    const std::shared_ptr<runtime::OffloadBackend>& backend,
                    int starvation_bound, bool use_virtual) {
  // One clock for the cell, both sessions and every driving thread:
  // under --virtual it is a discrete-event clock, otherwise the
  // process wall clock (the pre-seam behavior, bit for bit).
  const std::shared_ptr<sim::Clock> clk =
      use_virtual ? std::make_shared<sim::VirtualClock>() : sim::wall_clock_ptr();

  // One congested cell, ~0.5 Mb/s up: a 768-byte frame upload costs
  // ~12ms solo, ~24ms with the neighbor attached — the camera's single
  // worker is saturated by design.
  auto cell = std::make_shared<sim::SharedCell>([&] {
    sim::SharedCellConfig cc;
    cc.uplink = cc.uplink.congested(36.0);  // ~0.52 Mb/s
    cc.jitter_s = 0.002;
    cc.seed = 0xCE11;
    cc.clock = clk;
    return cc;
  }());
  runtime::TransportConfig transport;
  transport.cell = cell;

  runtime::EngineConfig cfg;
  cfg.net = &system.net;
  cfg.dict = &system.dict;
  cfg.policy_config.cloud_available = true;
  cfg.policy_config.entropy_threshold = 0.0;  // every frame -> cloud
  cfg.backend = backend;
  cfg.batch_size = 1;
  cfg.worker_threads = 1;
  cfg.queue_capacity = kRequests + 8;
  cfg.starvation_bound = starvation_bound;
  cfg.transport = transport;
  cfg.clock = clk;

  // The neighbor: a second station on the cell, uploading continuously
  // so the camera never sees an idle medium.
  runtime::EngineConfig neighbor_cfg = cfg;
  neighbor_cfg.starvation_bound = 64;
  neighbor_cfg.transport = transport;  // same cell

  // Seeded 90/10 priority mix, submitted as one burst so the queue is
  // deep before service catches up (the contended scenario). Declared
  // outside the session scope: completion callbacks reference these and
  // may run as late as the camera's destruction.
  util::Rng mix_rng(0xA11CE);
  std::vector<int> priorities;
  for (int i = 0; i < kRequests; ++i) {
    priorities.push_back(mix_rng.bernoulli(0.9) ? kHighPriority : 0);
  }
  std::vector<double> submitted_at(kRequests, 0.0);

  RunOutcome out;
  util::Stopwatch wall;
  const sim::Clock::TimePoint t0 = clk->now();
  std::mutex tally_mutex;
  {
    runtime::InferenceSession camera(cfg);
    runtime::InferenceSession neighbor(neighbor_cfg);

    std::atomic<bool> neighbor_stop{false};
    std::thread neighbor_traffic;
    {
      // The driver registers as a clock actor for the whole burst, so
      // under --virtual time only moves while it (and everyone else)
      // is parked in a clock wait. Scoped so the guard is released
      // before join(): the neighbor's final transfer still needs the
      // clock to advance once the driver is done.
      sim::ActorGuard driver(*clk);

      std::mutex ready_mutex;
      std::condition_variable ready_cv;
      bool neighbor_ready = false;
      neighbor_traffic = std::thread([&] {
        sim::ActorGuard actor(*clk);
        {
          std::lock_guard<std::mutex> lock(ready_mutex);
          neighbor_ready = true;
          ready_cv.notify_one();  // under the lock: the latch locals die
                                  // once the driver observes the flag
        }
        // A fixed virtual offset decouples the neighbor's first
        // reservation from the OS thread-start race: it lands at
        // t0+1ms on every run instead of wherever the scheduler put it.
        if (use_virtual) clk->sleep_for(0.001);
        int frame = 0;
        while (!neighbor_stop.load()) {
          neighbor.submit(system.data.test.instance(frame % system.data.test.size())).wait();
          ++frame;
        }
      });
      {
        std::unique_lock<std::mutex> lock(ready_mutex);
        ready_cv.wait(lock, [&] { return neighbor_ready; });
      }

      for (int i = 0; i < kRequests; ++i) {
        runtime::SubmitOptions opts;
        opts.priority = priorities[static_cast<std::size_t>(i)];
        const int tag = i;
        opts.on_complete = [&, tag](const runtime::ResultHandle& handle) {
          const double now_s = sim::Clock::seconds_between(t0, clk->now());
          const auto results = handle.wait();
          std::lock_guard<std::mutex> lock(tally_mutex);
          out.settle_order.push_back(tag);
          out.upload_timings.push_back(results.empty() ? 0.0 : results.front().upload_time_s);
          ClassTally& tally =
              priorities[static_cast<std::size_t>(tag)] == kHighPriority ? out.high : out.low;
          tally.e2e_s.push_back(now_s - submitted_at[static_cast<std::size_t>(tag)]);
        };
        submitted_at[static_cast<std::size_t>(i)] =
            sim::Clock::seconds_between(t0, clk->now());
        camera.submit(system.data.test.instance(i % system.data.test.size()), std::move(opts));
        // A 1µs virtual gap per submit: the worker claims each frame at
        // a deterministic instant, so the burst's pop order is a pure
        // function of the scheduling keys, not of how far the driver's
        // submission loop raced ahead of the worker.
        if (use_virtual) clk->sleep_for(1e-6);
      }
      camera.drain();
      out.metrics = camera.metrics();
      out.simulated_s = sim::Clock::seconds_between(t0, clk->now());
      neighbor_stop.store(true);
    }
    neighbor_traffic.join();
  }  // camera destruction flushes the completion callbacks
  out.wall_s = wall.seconds();
  return out;
}

void print_outcome(const char* label, const RunOutcome& out) {
  const runtime::SessionMetrics& m = out.metrics;
  const runtime::PriorityWaitStats high_wait = m.priority_wait(kHighPriority);
  const runtime::PriorityWaitStats low_wait = m.priority_wait(0);
  std::printf("%-14s %5lld %5lld %10.1f %10.1f %10.1f %10.1f %6lld %7.2f\n", label,
              static_cast<long long>(high_wait.requests), static_cast<long long>(low_wait.requests),
              1e3 * out.high.p(0.99), 1e3 * out.low.p(0.99), 1e3 * high_wait.p99_s,
              1e3 * low_wait.p99_s, static_cast<long long>(m.starvation_promotions),
              m.cell_airtime_utilization);
}

}  // namespace

int main(int argc, char** argv) {
  bool use_virtual = false;
  bool quick = false;
  std::string out_path = "BENCH_contention.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--virtual") == 0) {
      use_virtual = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ablation_cell_contention [--virtual] [--quick] [--out PATH]\n");
      return 2;
    }
  }

  util::Stopwatch sw;
  std::printf("=== Ablation: priority scheduling on a saturated shared cell ===\n");
  std::printf("    (clock: %s)\n\n", use_virtual ? "sim::VirtualClock" : "wall");

  bench::TrainBudget budget;
  if (quick) {
    budget.main_epochs = 1;
    budget.edge_epochs = 1;
  }
  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum, budget);
  nn::Sequential cloud_model = bench::train_cloud_model(system, quick ? 1 : 18);
  sim::CloudNode cloud(std::move(cloud_model));
  const auto backend = std::make_shared<runtime::RawImageBackend>(&cloud);

  std::printf("%d requests, 90%% at priority %d / 10%% at priority 0, one worker,\n", kRequests,
              kHighPriority);
  std::printf("two stations on one ~0.5 Mb/s cell (camera + background neighbor)\n\n");
  std::printf("%-14s %5s %5s %10s %10s %10s %10s %6s %7s\n", "scheduler", "high", "low",
              "hi p99ms", "lo p99ms", "hi qw99", "lo qw99", "promo", "cell");

  const RunOutcome aged = run_once(system, backend, /*starvation_bound=*/8, use_virtual);
  print_outcome("aged (bound 8)", aged);
  const RunOutcome pure = run_once(system, backend, /*starvation_bound=*/0, use_virtual);
  print_outcome("pure priority", pure);
  const RunOutcome repeat = run_once(system, backend, /*starvation_bound=*/8, use_virtual);

  bool ok = true;
  // The scheduler's contract under saturation: the high class strictly
  // beats the low class at p99...
  if (!(aged.high.p(0.99) < aged.low.p(0.99))) {
    std::printf("\nFAIL: high-priority p99 is not better than low-priority p99\n");
    ok = false;
  }
  // ...while the starvation bound keeps the low class's tail finite —
  // visibly tighter than the unaged scheduler's, which parks every low
  // request behind the whole high backlog.
  if (aged.metrics.starvation_promotions <= 0) {
    std::printf("FAIL: the aged scheduler never promoted a starving request\n");
    ok = false;
  }
  // Determinism at a fixed seed: same settle order, same simulated
  // transfer timings, request by request.
  if (aged.settle_order != repeat.settle_order) {
    std::printf("FAIL: same-seed runs settled in different orders\n");
    ok = false;
  } else if (aged.upload_timings != repeat.upload_timings) {
    std::printf("FAIL: same-seed runs saw different simulated transfer timings\n");
    ok = false;
  }
  if (ok) {
    std::printf("\nPASS: high p99 < low p99, promotions > 0, and the same-seed rerun\n");
    std::printf("reproduced the settle order and transfer timings exactly.\n");
  }

  if (use_virtual) {
    const double simulated = aged.simulated_s + pure.simulated_s + repeat.simulated_s;
    const double serving_wall = aged.wall_s + pure.wall_s + repeat.wall_s;
    std::printf("\nvirtual time: %.1f s of cell traffic served in %.2f s wall (%.0fx)\n",
                simulated, serving_wall, serving_wall > 0.0 ? simulated / serving_wall : 0.0);
  }

  // The tracked baseline renders through the shared diag exporter —
  // same serializer (and schema tag) as the live registry snapshot.
  auto run_value = [&](const char* name, const RunOutcome& r) {
    const runtime::SessionMetrics& m = r.metrics;
    diag::Value v = diag::Value::object();
    v.set("scheduler", name);
    v.set("high_p99_s", r.high.p(0.99));
    v.set("low_p99_s", r.low.p(0.99));
    v.set("high_queue_wait_p99_s", m.priority_wait(kHighPriority).p99_s);
    v.set("low_queue_wait_p99_s", m.priority_wait(0).p99_s);
    v.set("starvation_promotions", m.starvation_promotions);
    v.set("cell_airtime_utilization", m.cell_airtime_utilization);
    v.set("simulated_s", r.simulated_s);
    v.set("wall_s", r.wall_s);
    return v;
  };
  diag::Value doc = diag::Value::object();
  doc.set("schema", diag::kSchemaVersion);
  doc.set("bench", "ablation_cell_contention");
  doc.set("virtual_clock", use_virtual);
  doc.set("requests", kRequests);
  doc.set("high_priority_share", 0.9);
  diag::Value runs = diag::Value::array();
  runs.push(run_value("aged_bound_8", aged));
  runs.push(run_value("pure_priority", pure));
  runs.push(run_value("aged_bound_8_rerun", repeat));
  doc.set("runs", std::move(runs));
  doc.set("deterministic_rerun", aged.settle_order == repeat.settle_order &&
                                     aged.upload_timings == repeat.upload_timings);
  doc.set("pass", ok);
  doc.set("total_wall_s", sw.seconds());
  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string rendered = diag::to_json(doc);
  std::fprintf(json, "%s\n", rendered.c_str());
  std::fclose(json);
  std::printf("\nwrote %s\n", out_path.c_str());

  std::printf("\nreading: draining a saturated burst, the scheduler moves the high\n");
  std::printf("class ahead in line — its p99 sits strictly below the low class's.\n");
  std::printf("The aging knob is the dial between the two tails: disabling it\n");
  std::printf("(pure priority) buys the high class a lower p99 by parking every\n");
  std::printf("low request behind the entire backlog, while the bound paces the\n");
  std::printf("lows through at a measured promotion cost. The cell column is\n");
  std::printf("airtime demand per second on the scenario clock (>1 = saturated).\n");
  std::printf("\n[ablation_cell_contention] done in %.1f s\n", sw.seconds());
  return ok ? 0 : 1;
}
