// Ablation: priority-scheduled serving under a saturated shared cell.
//
// Two sessions share one sim::SharedCell: a "camera" serving a seeded
// 90/10 mix of high- and low-priority requests through a single worker,
// and a background "neighbor" hammering uploads so the cell stays
// saturated (every transfer pays the 2-station fair-share penalty). The
// camera's queue backs up behind the slow cloud round-trips, which is
// exactly where the scheduler earns its keep: high-priority requests
// jump the queue, low-priority ones ride the starvation bound.
//
// Reported per starvation-bound setting: per-priority queue-wait
// percentiles and measured end-to-end p50/p99 per class, starvation
// promotions, cell airtime utilization, and a determinism check (the
// settle order and simulated transfer timings of two same-seed runs
// must match exactly). Exits nonzero if the high-priority class does
// not beat the low-priority class at p99 under the aged scheduler, or
// if the same-seed runs diverge.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common.h"
#include "runtime/session.h"
#include "runtime/transport.h"
#include "sim/cloud_node.h"
#include "sim/shared_cell.h"
#include "util/stopwatch.h"

using namespace meanet;

namespace {

struct ClassTally {
  std::vector<double> e2e_s;
  double p(double q) const { return runtime::percentile(e2e_s, q); }
};

struct RunOutcome {
  ClassTally high, low;
  std::vector<int> settle_order;        // request tags in settle order
  std::vector<double> upload_timings;   // per settled request, simulated upload s
  runtime::SessionMetrics metrics;
};

constexpr int kHighPriority = 10;
constexpr int kRequests = 200;  // 90% high / 10% low, seeded

RunOutcome run_once(bench::TrainedSystem& system,
                    const std::shared_ptr<runtime::OffloadBackend>& backend,
                    int starvation_bound) {
  // One congested cell, ~0.5 Mb/s up: a 768-byte frame upload costs
  // ~12ms solo, ~24ms with the neighbor attached — the camera's single
  // worker is saturated by design.
  auto cell = std::make_shared<sim::SharedCell>([] {
    sim::SharedCellConfig cc;
    cc.uplink = cc.uplink.congested(36.0);  // ~0.52 Mb/s
    cc.jitter_s = 0.002;
    cc.seed = 0xCE11;
    return cc;
  }());
  runtime::TransportConfig transport;
  transport.cell = cell;

  runtime::EngineConfig cfg;
  cfg.net = &system.net;
  cfg.dict = &system.dict;
  cfg.policy_config.cloud_available = true;
  cfg.policy_config.entropy_threshold = 0.0;  // every frame -> cloud
  cfg.backend = backend;
  cfg.batch_size = 1;
  cfg.worker_threads = 1;
  cfg.queue_capacity = kRequests + 8;
  cfg.starvation_bound = starvation_bound;
  cfg.transport = transport;

  // The neighbor: a second station on the cell, uploading continuously
  // so the camera never sees an idle medium.
  runtime::EngineConfig neighbor_cfg = cfg;
  neighbor_cfg.starvation_bound = 64;
  neighbor_cfg.transport = transport;  // same cell

  RunOutcome out;
  util::Stopwatch clock;
  std::mutex tally_mutex;
  {
    runtime::InferenceSession camera(cfg);
    runtime::InferenceSession neighbor(neighbor_cfg);

    std::atomic<bool> neighbor_stop{false};
    std::thread neighbor_traffic([&] {
      int frame = 0;
      while (!neighbor_stop.load()) {
        neighbor.submit(system.data.test.instance(frame % system.data.test.size())).wait();
        ++frame;
      }
    });

    // Seeded 90/10 priority mix, submitted as one burst so the queue is
    // deep before service catches up (the contended scenario).
    util::Rng mix_rng(0xA11CE);
    std::vector<int> priorities;
    for (int i = 0; i < kRequests; ++i) {
      priorities.push_back(mix_rng.bernoulli(0.9) ? kHighPriority : 0);
    }
    std::vector<double> submitted_at(kRequests, 0.0);
    for (int i = 0; i < kRequests; ++i) {
      runtime::SubmitOptions opts;
      opts.priority = priorities[static_cast<std::size_t>(i)];
      const int tag = i;
      opts.on_complete = [&, tag](const runtime::ResultHandle& handle) {
        const double now_s = clock.seconds();
        const auto results = handle.wait();
        std::lock_guard<std::mutex> lock(tally_mutex);
        out.settle_order.push_back(tag);
        out.upload_timings.push_back(results.empty() ? 0.0 : results.front().upload_time_s);
        ClassTally& tally =
            priorities[static_cast<std::size_t>(tag)] == kHighPriority ? out.high : out.low;
        tally.e2e_s.push_back(now_s - submitted_at[static_cast<std::size_t>(tag)]);
      };
      submitted_at[static_cast<std::size_t>(i)] = clock.seconds();
      camera.submit(system.data.test.instance(i % system.data.test.size()), std::move(opts));
    }
    camera.drain();
    out.metrics = camera.metrics();
    neighbor_stop.store(true);
    neighbor_traffic.join();
  }  // camera destruction flushes the completion callbacks
  return out;
}

void print_outcome(const char* label, const RunOutcome& out) {
  const runtime::SessionMetrics& m = out.metrics;
  const runtime::PriorityWaitStats high_wait = m.priority_wait(kHighPriority);
  const runtime::PriorityWaitStats low_wait = m.priority_wait(0);
  std::printf("%-14s %5lld %5lld %10.1f %10.1f %10.1f %10.1f %6lld %7.2f\n", label,
              static_cast<long long>(high_wait.requests), static_cast<long long>(low_wait.requests),
              1e3 * out.high.p(0.99), 1e3 * out.low.p(0.99), 1e3 * high_wait.p99_s,
              1e3 * low_wait.p99_s, static_cast<long long>(m.starvation_promotions),
              m.cell_airtime_utilization);
}

}  // namespace

int main() {
  util::Stopwatch sw;
  std::printf("=== Ablation: priority scheduling on a saturated shared cell ===\n\n");

  bench::TrainedSystem system = bench::train_system(
      bench::EdgeModel::kResNetB, bench::DatasetKind::kCifarLike,
      bench::default_num_hard(bench::DatasetKind::kCifarLike), core::FusionMode::kSum,
      bench::TrainBudget{});
  nn::Sequential cloud_model = bench::train_cloud_model(system);
  sim::CloudNode cloud(std::move(cloud_model));
  const auto backend = std::make_shared<runtime::RawImageBackend>(&cloud);

  std::printf("%d requests, 90%% at priority %d / 10%% at priority 0, one worker,\n", kRequests,
              kHighPriority);
  std::printf("two stations on one ~0.5 Mb/s cell (camera + background neighbor)\n\n");
  std::printf("%-14s %5s %5s %10s %10s %10s %10s %6s %7s\n", "scheduler", "high", "low",
              "hi p99ms", "lo p99ms", "hi qw99", "lo qw99", "promo", "cell");

  const RunOutcome aged = run_once(system, backend, /*starvation_bound=*/8);
  print_outcome("aged (bound 8)", aged);
  const RunOutcome pure = run_once(system, backend, /*starvation_bound=*/0);
  print_outcome("pure priority", pure);
  const RunOutcome repeat = run_once(system, backend, /*starvation_bound=*/8);

  bool ok = true;
  // The scheduler's contract under saturation: the high class strictly
  // beats the low class at p99...
  if (!(aged.high.p(0.99) < aged.low.p(0.99))) {
    std::printf("\nFAIL: high-priority p99 is not better than low-priority p99\n");
    ok = false;
  }
  // ...while the starvation bound keeps the low class's tail finite —
  // visibly tighter than the unaged scheduler's, which parks every low
  // request behind the whole high backlog.
  if (aged.metrics.starvation_promotions <= 0) {
    std::printf("FAIL: the aged scheduler never promoted a starving request\n");
    ok = false;
  }
  // Determinism at a fixed seed: same settle order, same simulated
  // transfer timings, request by request.
  if (aged.settle_order != repeat.settle_order) {
    std::printf("FAIL: same-seed runs settled in different orders\n");
    ok = false;
  } else if (aged.upload_timings != repeat.upload_timings) {
    std::printf("FAIL: same-seed runs saw different simulated transfer timings\n");
    ok = false;
  }
  if (ok) {
    std::printf("\nPASS: high p99 < low p99, promotions > 0, and the same-seed rerun\n");
    std::printf("reproduced the settle order and transfer timings exactly.\n");
  }

  std::printf("\nreading: draining a saturated burst, the scheduler moves the high\n");
  std::printf("class ahead in line — its p99 sits strictly below the low class's.\n");
  std::printf("The aging knob is the dial between the two tails: disabling it\n");
  std::printf("(pure priority) buys the high class a lower p99 by parking every\n");
  std::printf("low request behind the entire backlog, while the bound paces the\n");
  std::printf("lows through at a measured promotion cost. The cell column is\n");
  std::printf("airtime demand per wall second (>1 = saturated medium).\n");
  std::printf("\n[ablation_cell_contention] done in %.1f s\n", sw.seconds());
  return ok ? 0 : 1;
}
